// Reproduces §IV-F: comparison with rival methods.
//
//  * Watermarking (Rai et al. [10]): reports Pc = 1.11e-87 at 0.13%–26%
//    area overhead. The comparable ML metric is the false-negative rate;
//    the paper reports FNR 0 (netlist) and 6.65e-4 (RTL) at zero hardware
//    overhead. This bench recomputes FNR on both corpora.
//  * Graph-similarity algorithms (Fyrbiak et al. [6]): "computation time
//    in the order of minutes" vs milliseconds for GNN4IP. This bench
//    times our classical neighbor-matching and WL baselines against
//    hw2vec inference on identical DFG pairs, and scores their
//    discrimination quality on the same held-out pairs.
#include <chrono>
#include <cstdio>
#include <vector>

#include "baseline/graph_similarity.h"
#include "common.h"
#include "data/corpus.h"
#include "data/rtl_designs.h"
#include "dfg/pipeline.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  using namespace gnn4ip;
  bench::print_header("§IV-F: comparison with rival methods");

  // --- FNR vs watermarking -----------------------------------------------------
  data::RtlCorpusOptions rtl_options;
  rtl_options.instances_per_family =
      bench::scale().rtl_instances_per_family;
  bench::TrainSetup setup;
  setup.epochs = bench::scale().epochs;
  const bench::TrainedModel rtl_model = bench::train_model(
      make_graph_entries(data::build_rtl_corpus(rtl_options)), setup);

  data::NetlistCorpusOptions nl_options;
  nl_options.instances_per_family =
      bench::scale().netlist_instances_per_family;
  const bench::TrainedModel nl_model = bench::train_model(
      make_graph_entries(data::build_netlist_corpus(nl_options)), setup);

  std::printf("\nFalse-negative rate (the watermarking-comparable metric):\n");
  std::printf("  %-10s %12s %14s\n", "dataset", "FNR", "paper FNR");
  std::printf("  %-10s %12.2e %14s\n", "RTL",
              rtl_model.eval.confusion.false_negative_rate(), "6.65e-4");
  std::printf("  %-10s %12.2e %14s\n", "Netlist",
              nl_model.eval.confusion.false_negative_rate(), "0");
  std::printf(
      "  watermarking [10]: Pc = 1.11e-87 but 0.13%%–26.12%% area overhead\n"
      "  and vulnerable to removal/masking/forging; GNN4IP adds zero\n"
      "  hardware overhead.\n");

  // --- runtime + quality vs graph-similarity algorithms --------------------------
  // Time all three methods on the same sample of held-out RTL pairs.
  const auto& ds = *rtl_model.dataset;
  const auto& test = rtl_model.trainer->split().test;
  const std::size_t sample_count = std::min<std::size_t>(12, test.size());

  std::vector<float> gnn_scores;
  std::vector<double> nm_scores;
  std::vector<double> wl_scores;
  std::vector<int> labels;

  const auto t_gnn = Clock::now();
  for (std::size_t k = 0; k < sample_count; ++k) {
    const train::PairSample& p = ds.pairs()[test[k]];
    gnn_scores.push_back(bench::cosine(rtl_model.embed(p.a),
                                       rtl_model.embed(p.b)));
  }
  const double gnn_seconds = seconds_since(t_gnn);

  // Rebuild the raw DFGs once for the classical algorithms.
  std::vector<graph::Digraph> dfgs;
  {
    data::RtlCorpusOptions opts = rtl_options;
    const auto items = data::build_rtl_corpus(opts);
    dfgs.reserve(items.size());
    for (const auto& item : items) {
      dfgs.push_back(dfg::extract_dfg(item.verilog));
    }
  }

  const auto t_wl = Clock::now();
  for (std::size_t k = 0; k < sample_count; ++k) {
    const train::PairSample& p = ds.pairs()[test[k]];
    wl_scores.push_back(
        baseline::wl_histogram_similarity(dfgs[p.a], dfgs[p.b]));
  }
  const double wl_seconds = seconds_since(t_wl);

  const auto t_nm = Clock::now();
  for (std::size_t k = 0; k < sample_count; ++k) {
    const train::PairSample& p = ds.pairs()[test[k]];
    nm_scores.push_back(baseline::neighbor_matching_similarity(
        dfgs[p.a], dfgs[p.b], {.iterations = 8}));
  }
  const double nm_seconds = seconds_since(t_nm);

  for (std::size_t k = 0; k < sample_count; ++k) {
    labels.push_back(ds.pairs()[test[k]].label);
  }

  // Quality: accuracy at each method's own best threshold over a larger
  // score sample (cheap for GNN/WL; reuse the 12-pair sample for NM).
  std::vector<float> wl_scores_f(wl_scores.begin(), wl_scores.end());
  std::vector<float> nm_scores_f(nm_scores.begin(), nm_scores.end());
  const double gnn_acc =
      train::confusion_at(gnn_scores, labels,
                          train::tune_threshold(gnn_scores, labels))
          .accuracy();
  const double wl_acc =
      train::confusion_at(wl_scores_f, labels,
                          train::tune_threshold(wl_scores_f, labels))
          .accuracy();
  const double nm_acc =
      train::confusion_at(nm_scores_f, labels,
                          train::tune_threshold(nm_scores_f, labels))
          .accuracy();

  std::printf("\nRuntime and quality on %zu held-out RTL DFG pairs:\n",
              sample_count);
  std::printf("  %-28s %16s %14s\n", "method", "ms per pair",
              "best-threshold acc");
  std::printf("  %-28s %16.3f %13.1f%%\n", "GNN4IP (hw2vec, ours)",
              1e3 * gnn_seconds / sample_count, 100.0 * gnn_acc);
  std::printf("  %-28s %16.3f %13.1f%%\n", "WL histogram (classical)",
              1e3 * wl_seconds / sample_count, 100.0 * wl_acc);
  std::printf("  %-28s %16.3f %13.1f%%\n", "neighbor matching [6]-style",
              1e3 * nm_seconds / sample_count, 100.0 * nm_acc);

  // --- scaling: industrial-size netlist DFGs ----------------------------------
  // The paper's §IV-F point: graph-similarity algorithms take minutes on
  // large designs while GNN4IP stays in milliseconds. Time one pair of
  // ISCAS-scale netlist DFGs (c432-vs-c499 stand-ins).
  {
    const auto benches = data::iscas_benchmarks();
    const graph::Digraph big_a =
        dfg::extract_dfg(benches[0].netlist.to_verilog());  // c432
    const graph::Digraph big_b =
        dfg::extract_dfg(benches[1].netlist.to_verilog());  // c499
    const gnn::GraphTensors ta = gnn::featurize(big_a);
    const gnn::GraphTensors tb = gnn::featurize(big_b);

    const auto t_gnn_big = Clock::now();
    const tensor::Matrix ha = nl_model.model->embed_inference(ta);
    const tensor::Matrix hb = nl_model.model->embed_inference(tb);
    volatile float sink = bench::cosine(ha, hb);
    (void)sink;
    const double gnn_big = seconds_since(t_gnn_big);

    const auto t_wl_big = Clock::now();
    (void)baseline::wl_histogram_similarity(big_a, big_b);
    const double wl_big = seconds_since(t_wl_big);

    const auto t_nm_big = Clock::now();
    (void)baseline::neighbor_matching_similarity(big_a, big_b,
                                                 {.iterations = 4});
    const double nm_big = seconds_since(t_nm_big);

    std::printf(
        "\nScaling on ISCAS-size netlist DFGs (%zu vs %zu nodes, one pair):\n",
        big_a.num_nodes(), big_b.num_nodes());
    std::printf("  %-28s %16.1f ms\n", "GNN4IP (hw2vec, ours)",
                1e3 * gnn_big);
    std::printf("  %-28s %16.1f ms\n", "WL histogram (classical)",
                1e3 * wl_big);
    std::printf("  %-28s %16.1f ms   (quadratic in graph size)\n",
                "neighbor matching [6]-style", 1e3 * nm_big);
  }

  // --- the §I-B challenge: same behavior, different topology -------------------
  // Classical similarity collapses on same-design pairs written in
  // different styles; the GNN keeps them together. Mean scores over
  // cross-style same-design pairs vs cross-design pairs:
  {
    struct Gen {
      const char* family;
      std::string (*gen)(const data::RtlVariant&);
      int styles;
    };
    const Gen gens[] = {
        {"adder", data::gen_adder, 3},
        {"crc8", data::gen_crc8, 2},
        {"multiplier", data::gen_multiplier, 2},
        {"parity", data::gen_parity, 2},
    };
    double gnn_same = 0.0;
    double wl_same = 0.0;
    double gnn_cross = 0.0;
    double wl_cross = 0.0;
    int same_count = 0;
    int cross_count = 0;
    std::vector<graph::Digraph> graphs;
    std::vector<tensor::Matrix> embeddings;
    std::vector<int> family_of;
    for (int f = 0; f < 4; ++f) {
      for (int s = 0; s < gens[f].styles; ++s) {
        graphs.push_back(dfg::extract_dfg(
            gens[f].gen(data::RtlVariant{s, static_cast<std::uint64_t>(
                                                 900 + f * 10 + s)})));
        embeddings.push_back(
            rtl_model.model->embed_inference(gnn::featurize(graphs.back())));
        family_of.push_back(f);
      }
    }
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      for (std::size_t j = i + 1; j < graphs.size(); ++j) {
        const double wl =
            baseline::wl_histogram_similarity(graphs[i], graphs[j]);
        const double gn = bench::cosine(embeddings[i], embeddings[j]);
        if (family_of[i] == family_of[j]) {
          wl_same += wl;
          gnn_same += gn;
          ++same_count;
        } else {
          wl_cross += wl;
          gnn_cross += gn;
          ++cross_count;
        }
      }
    }
    std::printf(
        "\nSame-behavior/different-topology challenge (§I-B), mean scores:\n");
    std::printf("  %-28s %18s %18s %9s\n", "method",
                "same design (x-style)", "different design", "gap");
    std::printf("  %-28s %18.3f %18.3f %+8.3f\n", "GNN4IP (hw2vec, ours)",
                gnn_same / same_count, gnn_cross / cross_count,
                gnn_same / same_count - gnn_cross / cross_count);
    std::printf("  %-28s %18.3f %18.3f %+8.3f\n", "WL histogram (classical)",
                wl_same / same_count, wl_cross / cross_count,
                wl_same / same_count - wl_cross / cross_count);
  }

  std::printf(
      "\nShape check: neighbor matching is orders of magnitude slower per\n"
      "pair and scales quadratically (the paper reports minutes vs\n"
      "milliseconds on full designs); on cross-style same-design pairs the\n"
      "GNN's same/different score gap should exceed the classical one —\n"
      "behavioral learning beats topological matching (§I-B).\n");
  return 0;
}
