// google-benchmark microbenchmarks for the hot kernels behind Table I's
// per-sample timing: Verilog frontend, DFG pipeline, featurization,
// GCN/pooling forward, whole-graph embedding, corpus-scale pairwise
// scoring (naive per-pair vs batched PairwiseScorer), and the classical
// baseline for contrast.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "audit/async_auditor.h"
#include "audit/audit_service.h"
#include "baseline/graph_similarity.h"
#include "common.h"
#include "core/gnn4ip.h"
#include "core/pairwise_scorer.h"
#include "core/sharded_corpus.h"
#include "data/corpus.h"
#include "data/rtl_designs.h"
#include "dist/dist_corpus.h"
#include "dist/shard_server.h"
#include "train/trainer.h"
#include "verilog/parser.h"

namespace {

using namespace gnn4ip;

const std::string& small_rtl() {
  static const std::string src = data::gen_adder({0, 1});
  return src;
}

const std::string& medium_rtl() {
  static const std::string src = data::gen_mips_pipeline({0, 1});
  return src;
}

const std::string& netlist_src() {
  static const std::string src =
      data::build_netlist_family("nl_mult4").to_verilog();
  return src;
}

void BM_ParseSmallRtl(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(verilog::parse(small_rtl()));
  }
}
BENCHMARK(BM_ParseSmallRtl);

void BM_ParseMediumRtl(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(verilog::parse(medium_rtl()));
  }
}
BENCHMARK(BM_ParseMediumRtl);

void BM_ExtractDfgSmall(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::extract_dfg(small_rtl()));
  }
}
BENCHMARK(BM_ExtractDfgSmall);

void BM_ExtractDfgMedium(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::extract_dfg(medium_rtl()));
  }
}
BENCHMARK(BM_ExtractDfgMedium);

void BM_ExtractDfgNetlist(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::extract_dfg(netlist_src()));
  }
}
BENCHMARK(BM_ExtractDfgNetlist);

void BM_Featurize(benchmark::State& state) {
  const graph::Digraph g = dfg::extract_dfg(medium_rtl());
  for (auto _ : state) {
    benchmark::DoNotOptimize(gnn::featurize(g));
  }
}
BENCHMARK(BM_Featurize);

void BM_GcnForward(benchmark::State& state) {
  const gnn::GraphTensors t = gnn::featurize(dfg::extract_dfg(medium_rtl()));
  util::Rng rng(1);
  gnn::GcnLayer layer(t.x.cols(), 16, rng);
  for (auto _ : state) {
    tensor::Tape tape;
    tensor::Var x = tape.constant(t.x);
    benchmark::DoNotOptimize(layer.forward(tape, t.adj, x));
  }
}
BENCHMARK(BM_GcnForward);

void BM_Hw2VecEmbedMedium(benchmark::State& state) {
  const gnn::GraphTensors t = gnn::featurize(dfg::extract_dfg(medium_rtl()));
  gnn::Hw2Vec model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.embed_inference(t));
  }
}
BENCHMARK(BM_Hw2VecEmbedMedium);

void BM_Hw2VecTrainStep(benchmark::State& state) {
  const gnn::GraphTensors t = gnn::featurize(dfg::extract_dfg(medium_rtl()));
  gnn::Hw2Vec model;
  util::Rng rng(2);
  for (auto _ : state) {
    tensor::Tape tape;
    tensor::Var h = model.embed(tape, t, rng, /*training=*/true);
    tensor::Var target =
        tape.constant(tensor::Matrix::ones(1, h.value().cols()));
    tensor::Var sim = tape.cosine_similarity(h, target);
    tensor::Var loss = tape.cosine_embedding_loss(sim, 1, 0.5F);
    tape.backward(loss);
    benchmark::DoNotOptimize(loss.value().at(0, 0));
    for (tensor::Parameter* p : model.parameters()) p->zero_grad();
  }
}
BENCHMARK(BM_Hw2VecTrainStep);

void BM_SpmmMedium(benchmark::State& state) {
  const gnn::GraphTensors t = gnn::featurize(dfg::extract_dfg(medium_rtl()));
  tensor::Matrix x(t.num_nodes, 16, 0.5F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.adj->multiply(x));
  }
}
BENCHMARK(BM_SpmmMedium);

// --- Corpus-scale pairwise scoring: the PairwiseScorer before/after. ---
//
// BM_PairwiseScoreNaivePerPair is the seed pattern (detector.check per
// pair: both members re-embedded for every one of the N·(N−1)/2 pairs);
// BM_PairwiseScoreBatched embeds each design once and scores every pair
// from the cached matrix with the blocked multi-threaded kernel. Both
// score the same 64-design corpus per iteration, so their per-iteration
// times are directly comparable. BM_EmbedCorpus isolates the embedding
// phase — the audit-path bottleneck once scoring is batched — across
// worker counts; embeddings are bit-identical for every Arg.

constexpr std::size_t kScoringCorpusSize = 64;

const std::vector<train::GraphEntry>& scoring_corpus() {
  static const std::vector<train::GraphEntry> entries = [] {
    data::RtlCorpusOptions options;
    options.instances_per_family = 2;
    std::vector<data::CorpusItem> items = data::build_rtl_corpus(options);
    items.resize(std::min(items.size(), kScoringCorpusSize));
    return make_graph_entries(items);
  }();
  return entries;
}

// One data-parallel training epoch (graph-batch mode) over the 64-design
// corpus across worker counts. Gradients reduce in fixed graph order, so
// every Arg trains the exact same trajectory — the axis shows pure
// thread scaling of the per-graph forward/backward fan-out.
void BM_TrainEpoch(benchmark::State& state) {
  const train::PairDataset dataset =
      train::PairDataset::all_pairs(scoring_corpus());
  gnn::Hw2Vec model;
  train::TrainConfig tc;
  tc.batch_graphs = 16;
  tc.max_steps_per_epoch = 4;
  tc.num_threads = static_cast<std::size_t>(state.range(0));
  train::Trainer trainer(model, dataset, tc);
  for (auto _ : state) {
    const train::EpochStats stats = trainer.train_epoch();
    benchmark::DoNotOptimize(stats.mean_loss);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["graphs"] = static_cast<double>(dataset.graphs().size());
}
BENCHMARK(BM_TrainEpoch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_EmbedCorpus(benchmark::State& state) {
  const std::vector<train::GraphEntry>& entries = scoring_corpus();
  gnn::Hw2Vec model;
  core::ScorerOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const core::PairwiseScorer scorer =
        core::PairwiseScorer::from_entries(model, entries, options);
    benchmark::DoNotOptimize(scorer.size());
  }
  state.counters["designs"] = static_cast<double>(entries.size());
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EmbedCorpus)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Cold-cache variant of the single-thread corpus embed: the pooled
// adjacency memo is reset every iteration, so this is the cost of a
// one-shot audit of a never-seen corpus (BM_EmbedCorpus above reports
// the warm steady state of a resident corpus).
void BM_EmbedCorpusCold(benchmark::State& state) {
  std::vector<train::GraphEntry> entries = scoring_corpus();  // own copy
  gnn::Hw2Vec model;
  core::ScorerOptions options;
  options.num_threads = 1;
  for (auto _ : state) {
    state.PauseTiming();
    for (train::GraphEntry& e : entries) {
      e.tensors.pooled_cache = std::make_shared<gnn::PooledAdjCache>();
    }
    state.ResumeTiming();
    const core::PairwiseScorer scorer =
        core::PairwiseScorer::from_entries(model, entries, options);
    benchmark::DoNotOptimize(scorer.size());
  }
  state.counters["designs"] = static_cast<double>(entries.size());
}
BENCHMARK(BM_EmbedCorpusCold)->Unit(benchmark::kMillisecond);

void BM_PairwiseScoreNaivePerPair(benchmark::State& state) {
  const std::vector<train::GraphEntry>& entries = scoring_corpus();
  gnn::Hw2Vec model;
  std::size_t pairs = 0;
  for (auto _ : state) {
    float acc = 0.0F;
    pairs = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      for (std::size_t j = i + 1; j < entries.size(); ++j) {
        const tensor::Matrix ha = model.embed_inference(entries[i].tensors);
        const tensor::Matrix hb = model.embed_inference(entries[j].tensors);
        acc += bench::cosine(ha, hb);
        ++pairs;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(pairs) * state.iterations());
  state.counters["designs"] = static_cast<double>(entries.size());
}
BENCHMARK(BM_PairwiseScoreNaivePerPair)->Unit(benchmark::kMillisecond);

void BM_PairwiseScoreBatched(benchmark::State& state) {
  const std::vector<train::GraphEntry>& entries = scoring_corpus();
  gnn::Hw2Vec model;
  std::size_t pairs = 0;
  for (auto _ : state) {
    const core::PairwiseScorer scorer =
        core::PairwiseScorer::from_entries(model, entries);
    const std::vector<core::PairScore> scores = scorer.score_all_pairs();
    pairs = scores.size();
    float acc = 0.0F;
    for (const core::PairScore& p : scores) acc += p.similarity;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(pairs) * state.iterations());
  state.counters["designs"] = static_cast<double>(entries.size());
}
BENCHMARK(BM_PairwiseScoreBatched)->Unit(benchmark::kMillisecond);

// The cached-matrix kernel alone (embeddings precomputed): what scoring
// costs once a corpus is resident.
void BM_PairwiseKernelOnly(benchmark::State& state) {
  const std::vector<train::GraphEntry>& entries = scoring_corpus();
  gnn::Hw2Vec model;
  const core::PairwiseScorer scorer =
      core::PairwiseScorer::from_entries(model, entries);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.score_matrix());
  }
}
BENCHMARK(BM_PairwiseKernelOnly);

// The full audit-service loop per batch across worker counts: 8 designs
// are submitted (pre-featurized GraphEntry path), then one screen()
// embeds them in parallel, scores them against the 56 pinned residents
// via score_new_rows, and evicts them again (max_resident == library
// size), so every iteration sees the same steady-state corpus. Verdicts
// are bit-identical for every Arg.
void BM_AuditSubmit(benchmark::State& state) {
  const std::vector<train::GraphEntry>& entries = scoring_corpus();
  const std::size_t library = entries.size() - 8;
  gnn::Hw2Vec model;
  audit::AuditOptions options;
  options.scorer.num_threads = static_cast<std::size_t>(state.range(0));
  options.max_resident = library;
  audit::AuditService service(model, options);
  for (std::size_t i = 0; i < library; ++i) {
    (void)service.add_library(entries[i]);
  }
  for (auto _ : state) {
    for (std::size_t i = library; i < entries.size(); ++i) {
      benchmark::DoNotOptimize(service.submit(entries[i]));
    }
    const std::vector<audit::ScreenReport> reports = service.screen();
    benchmark::DoNotOptimize(reports.size());
  }
  state.counters["resident"] = static_cast<double>(library);
  state.counters["batch"] = static_cast<double>(entries.size() - library);
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AuditSubmit)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The audit loop across shard counts: identical work to BM_AuditSubmit
// (8 submissions screened against 56 pinned residents, then evicted),
// but the resident corpus is split over state.range(0) hash-placed
// shards and score_new_rows fans the shards out over the pool. Verdicts
// are bit-identical for every Arg — the axis shows what sharding costs
// (or buys, on multi-core hosts) with results pinned.
void BM_ShardedScreen(benchmark::State& state) {
  const std::vector<train::GraphEntry>& entries = scoring_corpus();
  const std::size_t library = entries.size() - 8;
  gnn::Hw2Vec model;
  audit::AuditOptions options;
  options.num_shards = static_cast<std::size_t>(state.range(0));
  options.max_resident = library;
  audit::AuditService service(model, options);
  for (std::size_t i = 0; i < library; ++i) {
    (void)service.add_library(entries[i]);
  }
  for (auto _ : state) {
    for (std::size_t i = library; i < entries.size(); ++i) {
      benchmark::DoNotOptimize(service.submit(entries[i]));
    }
    const std::vector<audit::ScreenReport> reports = service.screen();
    benchmark::DoNotOptimize(reports.size());
  }
  state.counters["resident"] = static_cast<double>(library);
  state.counters["shards"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ShardedScreen)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The async front end per batch: 8 submissions handed to the
// AsyncAuditor daemon, then all futures awaited. Measures the full
// producer→queue→daemon→screen→future round trip (the daemon batches
// whatever accumulates, so per-iteration batch shapes adapt to timing;
// the corpus state each design scores against is pinned by
// max_resident == library, keeping the work per iteration constant).
void BM_AsyncSubmitDrain(benchmark::State& state) {
  const std::vector<train::GraphEntry>& entries = scoring_corpus();
  const std::size_t library = entries.size() - 8;
  gnn::Hw2Vec model;
  audit::AuditOptions options;
  options.num_shards = 2;
  options.max_resident = library;
  audit::AsyncAuditor auditor(model, options);
  for (std::size_t i = 0; i < library; ++i) {
    (void)auditor.service().add_library(entries[i]);
  }
  for (auto _ : state) {
    std::vector<std::future<audit::ScreenReport>> futures;
    futures.reserve(entries.size() - library);
    for (std::size_t i = library; i < entries.size(); ++i) {
      futures.push_back(auditor.submit(entries[i]));
    }
    std::size_t verdicts = 0;
    for (std::future<audit::ScreenReport>& f : futures) {
      verdicts += f.get().verdicts.size();
    }
    benchmark::DoNotOptimize(verdicts);
  }
  state.counters["resident"] = static_cast<double>(library);
  state.counters["batch"] = static_cast<double>(entries.size() - library);
}
BENCHMARK(BM_AsyncSubmitDrain)->Unit(benchmark::kMillisecond);

// Consumer-scaling curve: the same fixed submission stream as
// BM_AsyncSubmitDrain, but screened by a pool of state.range(0)
// consumers with single-submission chunks, so concurrent batches
// actually overlap. Verdicts stay bit-identical for every Arg
// (per-submission ticket-ordered commits); the axis shows what the
// multi-consumer refactor buys on the parallel compile+embed phase and
// what the commit turnstile costs.
void BM_ConcurrentScreen(benchmark::State& state) {
  const std::vector<train::GraphEntry>& entries = scoring_corpus();
  const std::size_t library = entries.size() - 8;
  gnn::Hw2Vec model;
  audit::AuditOptions options;
  options.num_shards = 2;
  options.max_resident = library;
  audit::AsyncOptions async;
  async.num_consumers = static_cast<std::size_t>(state.range(0));
  async.max_batch = 1;  // one submission per chunk: consumers overlap
  audit::AsyncAuditor auditor(model, options, std::move(async));
  for (std::size_t i = 0; i < library; ++i) {
    (void)auditor.service().add_library(entries[i]);
  }
  for (auto _ : state) {
    std::vector<std::future<audit::ScreenReport>> futures;
    futures.reserve(entries.size() - library);
    for (std::size_t i = library; i < entries.size(); ++i) {
      futures.push_back(auditor.submit(entries[i]));
    }
    std::size_t verdicts = 0;
    for (std::future<audit::ScreenReport>& f : futures) {
      verdicts += f.get().verdicts.size();
    }
    benchmark::DoNotOptimize(verdicts);
  }
  state.counters["resident"] = static_cast<double>(library);
  state.counters["consumers"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ConcurrentScreen)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// One durable round trip across shard counts: save_corpus writes the
// whole resident corpus (binary shard files + manifest + service
// state), then a fresh service warm-restarts from it. Measures the
// checkpoint/restart cost a deployment pays, dominated by the exact-
// byte float block IO; the snapshot_test suite pins the fidelity.
void BM_SnapshotRoundTrip(benchmark::State& state) {
  const std::vector<train::GraphEntry>& entries = scoring_corpus();
  gnn::Hw2Vec model;
  audit::AuditOptions options;
  options.num_shards = static_cast<std::size_t>(state.range(0));
  audit::AuditService service(model, options);
  for (const train::GraphEntry& entry : entries) {
    (void)service.add_library(entry);
  }
  const std::string dir =
      (std::filesystem::temp_directory_path() / "gnn4ip_bench_snapshot")
          .string();
  for (auto _ : state) {
    service.save_corpus(dir);
    audit::AuditService restored(model, options);
    restored.load_corpus(dir);
    benchmark::DoNotOptimize(restored.resident());
  }
  std::filesystem::remove_all(dir);
  state.counters["resident"] = static_cast<double>(entries.size());
  state.counters["shards"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SnapshotRoundTrip)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- Retrieval at corpus scale: the int8 prefilter tier. ---
//
// The 64 real designs cap what the embedding front end can feed a bench
// iteration, but the retrieval tier's whole point is sub-linear exact
// work at 10k+ resident rows. So these benches screen a synthetic-
// variant corpus: real anchor embeddings (the RTL corpus plus a handful
// of data::obfuscate netlist variants) blended pairwise with
// deterministic noise — corpus-shaped geometry (clusters + spread) at
// whatever N the bench asks for, reproducible run to run.

std::vector<float> matrix_row(const tensor::Matrix& m) {
  const std::span<const float> row = m.row(0);
  return {row.begin(), row.end()};
}

const std::vector<std::vector<float>>& anchor_embeddings() {
  static const std::vector<std::vector<float>> anchors = [] {
    gnn::Hw2Vec model;
    std::vector<std::vector<float>> out;
    for (const train::GraphEntry& e : scoring_corpus()) {
      out.push_back(matrix_row(model.embed_inference(e.tensors)));
    }
    const data::Netlist base = data::build_netlist_family("nl_alu4");
    util::Rng rng(11);
    for (int v = 0; v < 8; ++v) {
      out.push_back(matrix_row(model.embed_inference(gnn::featurize(
          dfg::extract_dfg(data::obfuscate(base, {}, rng).to_verilog())))));
    }
    return out;
  }();
  return anchors;
}

// Works for any CorpusBackend front end (ShardedCorpus, DistCorpus):
// the RNG stream depends only on (rows, seed), so every backend sees
// byte-identical embeddings.
template <typename Corpus>
void fill_variant_corpus(Corpus& corpus, std::size_t rows,
                         std::uint64_t seed) {
  const std::vector<std::vector<float>>& anchors = anchor_embeddings();
  const std::size_t d = anchors.front().size();
  float scale = 0.0F;
  for (const float x : anchors.front()) scale += std::abs(x);
  scale /= static_cast<float>(d);
  util::Rng rng(seed);
  tensor::Matrix row(1, d);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::vector<float>& a = anchors[rng.next_below(anchors.size())];
    const std::vector<float>& b = anchors[rng.next_below(anchors.size())];
    const float w = rng.uniform(0.0F, 1.0F);
    for (std::size_t k = 0; k < d; ++k) {
      row.at(0, k) = w * a[k] + (1.0F - w) * b[k] +
                     scale * static_cast<float>(rng.normal());
    }
    corpus.add("variant#" + std::to_string(i), row);
  }
}

// All-pairs flag() over a 1k-row variant corpus, exhaustive (Arg 0) vs
// int8-bound-gated (Arg 1). Output is bit-identical either way
// (kernel_test pins it); the axis is pure retrieval cost.
void BM_QuantPrefilter(benchmark::State& state) {
  core::ScorerOptions options;
  options.num_threads = 1;
  options.int8_prefilter = state.range(0) != 0;
  core::ShardedCorpus corpus(1, options);
  fill_variant_corpus(corpus, 1024, /*seed=*/5);
  std::size_t flagged = 0;
  for (auto _ : state) {
    const std::vector<core::PairScore> pairs = corpus.flag(0.5F);
    flagged = pairs.size();
    benchmark::DoNotOptimize(flagged);
  }
  state.counters["rows"] = static_cast<double>(corpus.size());
  state.counters["flagged"] = static_cast<double>(flagged);
  state.counters["prefilter"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_QuantPrefilter)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Incremental screening against a 10k-row resident corpus (4 shards,
// shared pool): a batch of 8 incoming rows through screen_new_rows,
// exhaustive (Arg 0) vs prefiltered (Arg 1). The scanned/rescored
// counters expose how much exact work the bounds pruned; flagged/best
// outputs are bit-identical across the two Args.
void BM_ShardedScreen10k(benchmark::State& state) {
  constexpr std::size_t kResident = 10'000;
  constexpr std::size_t kBatch = 8;
  core::ScorerOptions options;
  options.int8_prefilter = state.range(0) != 0;
  core::ShardedCorpus corpus(4, options);
  fill_variant_corpus(corpus, kResident + kBatch, /*seed=*/5);
  std::size_t scanned = 0;
  std::size_t rescored = 0;
  for (auto _ : state) {
    const std::vector<core::ScreenRow> rows =
        corpus.screen_new_rows(kResident, 0.5F);
    scanned = 0;
    rescored = 0;
    for (const core::ScreenRow& row : rows) {
      scanned += row.scanned;
      rescored += row.rescored;
    }
    benchmark::DoNotOptimize(rescored);
  }
  state.SetItemsProcessed(static_cast<int64_t>(scanned) * state.iterations());
  state.counters["resident"] = static_cast<double>(kResident);
  state.counters["batch"] = static_cast<double>(kBatch);
  state.counters["scanned"] = static_cast<double>(scanned);
  state.counters["rescored"] = static_cast<double>(rescored);
  state.counters["prefilter"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ShardedScreen10k)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// --- Distributed screening over real loopback TCP. ---
//
// BM_RemoteScreen is the wire-path counterpart of BM_ShardedScreen10k:
// the same 8-probe screen_new_rows sweep over a 10k-row variant corpus,
// but the resident rows live in state.range(0) in-process ShardServer
// instances behind real TCP sockets with a DistCorpus front end —
// G4IPWIRE framing, buffered admissions, vectored probe-slab writes,
// pipelined fan-out/fan-in and the fixed-tie-break merge included.
// dist_test pins the outputs bit-identical to the in-process corpus;
// the axis shows what the wire costs (1 server) and what shard-process
// parallelism buys back (2 servers) on multi-core hosts.
void BM_RemoteScreen(benchmark::State& state) {
  constexpr std::size_t kResident = 10'000;
  constexpr std::size_t kBatch = 8;
  const auto shards = static_cast<std::size_t>(state.range(0));
  dist::ShardServerOptions server_options;
  server_options.poll_ms = 5;
  std::vector<std::unique_ptr<dist::ShardServer>> servers;
  std::vector<std::thread> serving;
  std::vector<dist::Endpoint> endpoints;
  for (std::size_t s = 0; s < shards; ++s) {
    servers.push_back(std::make_unique<dist::ShardServer>(0, server_options));
    endpoints.push_back({"127.0.0.1", servers.back()->port()});
    serving.emplace_back([&server = *servers.back()] { server.serve(); });
  }
  {
    core::ScorerOptions options;
    options.num_threads = shards;  // one fan-out worker per server
    auto corpus = dist::DistCorpus::connect(endpoints, /*fingerprint=*/"",
                                            options);
    fill_variant_corpus(*corpus, kResident + kBatch, /*seed=*/5);
    for (auto _ : state) {
      const std::vector<core::ScreenRow> rows =
          corpus->screen_new_rows(kResident, 0.5F);
      benchmark::DoNotOptimize(rows.size());
    }
    state.SetItemsProcessed(static_cast<int64_t>(kResident * kBatch) *
                            state.iterations());
    state.counters["resident"] = static_cast<double>(kResident);
    state.counters["batch"] = static_cast<double>(kBatch);
    state.counters["servers"] = static_cast<double>(shards);
  }  // hang up before stopping the servers
  for (auto& server : servers) server->stop();
  for (std::thread& t : serving) t.join();
}
BENCHMARK(BM_RemoteScreen)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_BaselineWl(benchmark::State& state) {
  const graph::Digraph a = dfg::extract_dfg(medium_rtl());
  const graph::Digraph b =
      dfg::extract_dfg(data::gen_mips_single({0, 2}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::wl_histogram_similarity(a, b));
  }
}
BENCHMARK(BM_BaselineWl);

void BM_BaselineNeighborMatching(benchmark::State& state) {
  const graph::Digraph a = dfg::extract_dfg(medium_rtl());
  const graph::Digraph b =
      dfg::extract_dfg(data::gen_mips_single({0, 2}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::neighbor_matching_similarity(a, b, {.iterations = 4}));
  }
}
BENCHMARK(BM_BaselineNeighborMatching);

void BM_ObfuscateNetlist(benchmark::State& state) {
  const data::Netlist base = data::build_netlist_family("nl_alu4");
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::obfuscate(base, {}, rng));
  }
}
BENCHMARK(BM_ObfuscateNetlist);

}  // namespace

BENCHMARK_MAIN();
