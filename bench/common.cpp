#include "common.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace gnn4ip::bench {

const Scale& scale() {
  static const Scale kFast{"fast", 4, 4, 30, 12, 3, 2};
  static const Scale kDefault{"default", 12, 12, 120, 40, 8, 4};
  static const Scale kPaper{"paper", 18, 14, 160, 125, 20, 4};
  const char* env = std::getenv("GNN4IP_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "fast") == 0) return kFast;
  if (env != nullptr && std::strcmp(env, "paper") == 0) return kPaper;
  return kDefault;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("  %s\n", title.c_str());
  std::printf("  [scale: %s — set GNN4IP_BENCH_SCALE=fast|default|paper]\n",
              scale().name);
  std::printf("================================================================\n");
}

tensor::Matrix TrainedModel::embed(std::size_t graph_index) const {
  return model->embed_inference(
      dataset->graphs().at(graph_index).tensors);
}

tensor::Matrix TrainedModel::embed(const train::GraphEntry& entry) const {
  return model->embed_inference(entry.tensors);
}

float cosine(const tensor::Matrix& a, const tensor::Matrix& b) {
  const float ab = tensor::dot(a, b);
  const float denom =
      std::max(a.frobenius_norm() * b.frobenius_norm(), 1e-8F);
  return ab / denom;
}

TrainedModel train_model(std::vector<train::GraphEntry> entries,
                         const TrainSetup& setup) {
  TrainedModel tm;
  tm.model = std::make_unique<gnn::Hw2Vec>(setup.model);
  train::PairDataset::PairOptions pair_options;
  pair_options.max_negative_ratio = setup.negative_ratio;
  tm.dataset = std::make_unique<train::PairDataset>(
      train::PairDataset::all_pairs(std::move(entries), pair_options));
  train::TrainConfig tc;
  tc.epochs = setup.epochs;
  tc.batch_graphs = setup.batch_graphs;
  tc.learning_rate = setup.learning_rate;
  tc.seed = setup.seed;
  tm.trainer =
      std::make_unique<train::Trainer>(*tm.model, *tm.dataset, tc);
  const auto t0 = std::chrono::steady_clock::now();
  for (int e = 0; e < tc.epochs; ++e) {
    const train::EpochStats stats = tm.trainer->train_epoch();
    tm.train_pair_samples += stats.pairs_seen;
  }
  const auto t1 = std::chrono::steady_clock::now();
  tm.train_seconds = std::chrono::duration<double>(t1 - t0).count();
  tm.eval = tm.trainer->evaluate();
  return tm;
}

double mean_nodes(const std::vector<train::GraphEntry>& entries) {
  if (entries.empty()) return 0.0;
  double total = 0.0;
  for (const auto& e : entries) {
    total += static_cast<double>(e.tensors.num_nodes);
  }
  return total / static_cast<double>(entries.size());
}

}  // namespace gnn4ip::bench
