// AuditService tests: screen() parity with the raw
// PairwiseScorer::score_new_rows path (bit-identical across worker
// counts — the facade must never change the arithmetic), Result-style
// per-submission diagnostics, and the eviction story (LRU, pinning,
// capacity bounds, evict-then-resubmit).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "audit/async_auditor.h"
#include "audit/audit_service.h"
#include "core/gnn4ip.h"
#include "core/pairwise_scorer.h"
#include "data/corpus.h"
#include "data/rtl_designs.h"
#include "util/contract.h"

namespace gnn4ip::audit {
namespace {

constexpr std::size_t kNoIndex = core::ShardedCorpus::kNoIndex;

std::vector<data::CorpusItem> small_corpus_items() {
  data::RtlCorpusOptions options;
  options.instances_per_family = 2;
  options.families = {"adder", "crc8", "parity", "counter"};
  return data::build_rtl_corpus(options);
}

std::vector<train::GraphEntry> small_corpus() {
  return make_graph_entries(small_corpus_items());
}

TEST(AuditService, ScreenBitIdenticalToScoreNewRowsAcross1And2And8Workers) {
  // The acceptance bar: screen() verdict similarities equal the rows of
  // PairwiseScorer::score_new_rows on an identically built corpus — not
  // approximately, bit-for-bit — for any worker count. Submissions
  // commit one at a time, so submission r scores against the library
  // AND its r earlier batch-mates (columns j < library + r of the
  // reference matrix).
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 6u);
  const std::size_t library = 5;

  std::vector<std::vector<ScreenReport>> per_thread;
  for (std::size_t threads : {1u, 2u, 8u}) {
    AuditOptions options;
    options.scorer.num_threads = threads;
    options.scorer.delta = -2.0F;  // every resident match becomes a verdict
    AuditService service(model, options);
    for (std::size_t i = 0; i < library; ++i) {
      ASSERT_TRUE(service.add_library(entries[i]).accepted);
    }
    for (std::size_t i = library; i < entries.size(); ++i) {
      ASSERT_TRUE(service.submit(entries[i]));
    }
    per_thread.push_back(service.screen());
  }

  // Reference: the hand-wired path the facade replaced.
  core::ScorerOptions ref_options;
  const core::PairwiseScorer reference =
      core::PairwiseScorer::from_entries(model, entries, ref_options);
  const tensor::Matrix expected = reference.score_new_rows(library);

  for (const std::vector<ScreenReport>& reports : per_thread) {
    ASSERT_EQ(reports.size(), entries.size() - library);
    for (std::size_t r = 0; r < reports.size(); ++r) {
      const ScreenReport& report = reports[r];
      ASSERT_TRUE(report.submission.accepted);
      ASSERT_EQ(report.verdicts.size(), library + r);
      std::map<std::string, float> by_name;
      for (const Verdict& v : report.verdicts) {
        by_name[v.matched] = v.similarity;
      }
      for (std::size_t j = 0; j < library + r; ++j) {
        ASSERT_TRUE(by_name.count(entries[j].name));
        EXPECT_EQ(by_name[entries[j].name], expected.at(r, j))
            << "query " << report.submission.name << " vs "
            << entries[j].name;
      }
      ASSERT_TRUE(report.best.has_value());
      EXPECT_EQ(report.best->similarity, report.verdicts.front().similarity);
    }
  }
}

TEST(AuditService, VerilogSourcePathMatchesGraphPath) {
  // submit(name, verilog) runs parse → featurize → embed inside the
  // service; the scores must equal the pre-featurized GraphEntry path
  // bit-for-bit (same pipeline, same arithmetic).
  gnn::Hw2Vec model;
  const auto items = small_corpus_items();
  const auto entries = make_graph_entries(items);
  ASSERT_GE(items.size(), 4u);

  const auto screen_sims = [&](bool from_source) {
    AuditOptions options;
    options.scorer.delta = -2.0F;
    AuditService service(model, options);
    (void)service.add_library(entries[0]);
    (void)service.add_library(entries[1]);
    for (std::size_t i = 2; i < 4; ++i) {
      if (from_source) {
        EXPECT_TRUE(service.submit(items[i].name, items[i].verilog));
      } else {
        EXPECT_TRUE(service.submit(entries[i]));
      }
    }
    std::vector<float> sims;
    for (const ScreenReport& report : service.screen()) {
      EXPECT_TRUE(report.submission.accepted);
      for (const Verdict& v : report.verdicts) sims.push_back(v.similarity);
    }
    return sims;
  };

  const std::vector<float> from_source = screen_sims(true);
  const std::vector<float> from_graph = screen_sims(false);
  ASSERT_EQ(from_source.size(), from_graph.size());
  ASSERT_FALSE(from_source.empty());
  for (std::size_t i = 0; i < from_source.size(); ++i) {
    EXPECT_EQ(from_source[i], from_graph[i]);
  }
}

TEST(AuditService, MalformedDesignGetsDiagnosticWithoutKillingBatch) {
  gnn::Hw2Vec model;
  const auto items = small_corpus_items();
  AuditOptions options;
  options.scorer.delta = -2.0F;
  AuditService service(model, options);
  ASSERT_TRUE(service.add_library(items[0].name, items[0].verilog).accepted);

  ASSERT_TRUE(service.submit("good#1", items[1].verilog));
  ASSERT_TRUE(service.submit("broken", "module oops (input a, ;;;"));
  ASSERT_TRUE(service.submit("good#2", items[2].verilog));
  const std::vector<ScreenReport> reports = service.screen();
  ASSERT_EQ(reports.size(), 3u);

  EXPECT_TRUE(reports[0].submission.accepted);
  EXPECT_TRUE(reports[0].best.has_value());
  EXPECT_FALSE(reports[1].submission.accepted);
  EXPECT_FALSE(reports[1].submission.error.message.empty());
  EXPECT_GT(reports[1].submission.error.location.line, 0);
  EXPECT_TRUE(reports[1].verdicts.empty());
  EXPECT_FALSE(reports[1].best.has_value());
  EXPECT_TRUE(reports[2].submission.accepted);
  EXPECT_TRUE(reports[2].best.has_value());

  // Only the two good designs joined the corpus.
  EXPECT_EQ(service.resident(), 3u);
  EXPECT_FALSE(service.contains("broken"));
}

TEST(AuditService, LibraryParseErrorReportsDiagnostic) {
  gnn::Hw2Vec model;
  AuditService service(model);
  const Submission s = service.add_library("bad-lib", "module (((");
  EXPECT_FALSE(s.accepted);
  EXPECT_FALSE(s.error.message.empty());
  EXPECT_EQ(service.resident(), 0u);
}

TEST(AuditService, EvictThenResubmitSameName) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  AuditOptions options;
  options.max_resident = 1;
  AuditService service(model, options);

  ASSERT_TRUE(service.submit("a", entries[0].tensors));
  (void)service.screen();
  EXPECT_TRUE(service.contains("a"));
  EXPECT_EQ(service.resident(), 1u);

  // "b" arrives: LRU evicts "a".
  ASSERT_TRUE(service.submit("b", entries[1].tensors));
  (void)service.screen();
  EXPECT_FALSE(service.contains("a"));
  EXPECT_TRUE(service.contains("b"));
  EXPECT_EQ(service.resident(), 1u);

  // Resubmitting the evicted name re-admits it cleanly.
  ASSERT_TRUE(service.submit("a", entries[0].tensors));
  const std::vector<ScreenReport> reports = service.screen();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].submission.accepted);
  EXPECT_TRUE(service.contains("a"));
  EXPECT_FALSE(service.contains("b"));
  EXPECT_EQ(service.resident(), 1u);
}

TEST(AuditService, PinnedEntriesAreNeverEvicted) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 6u);
  AuditOptions options;
  options.scorer.delta = -2.0F;
  options.max_resident = 2;
  AuditService service(model, options);
  ASSERT_TRUE(service.add_library("lib:0", entries[0].tensors).accepted);
  ASSERT_TRUE(service.add_library("lib:1", entries[1].tensors).accepted);
  EXPECT_TRUE(service.pinned("lib:0"));

  for (std::size_t i = 2; i < 6; ++i) {
    ASSERT_TRUE(
        service.submit("q" + std::to_string(i), entries[i].tensors));
  }
  const std::vector<ScreenReport> reports = service.screen();
  ASSERT_EQ(reports.size(), 4u);
  for (const ScreenReport& report : reports) {
    // Every query was screened against both library entries...
    EXPECT_TRUE(report.submission.accepted);
    EXPECT_EQ(report.verdicts.size(), 2u);
    // ...then evicted to respect max_resident == pinned library size.
    EXPECT_EQ(report.submission.corpus_index, kNoIndex);
  }
  EXPECT_EQ(service.resident(), 2u);
  EXPECT_TRUE(service.contains("lib:0"));
  EXPECT_TRUE(service.contains("lib:1"));
}

TEST(AuditService, CapacityOneCorpusScreensAndEvicts) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  AuditOptions options;
  options.scorer.delta = -2.0F;
  options.max_resident = 1;
  AuditService service(model, options);
  ASSERT_TRUE(service.add_library("lib", entries[0].tensors).accepted);

  ASSERT_TRUE(service.submit("query", entries[1].tensors));
  const std::vector<ScreenReport> reports = service.screen();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].submission.accepted);
  ASSERT_TRUE(reports[0].best.has_value());
  EXPECT_EQ(reports[0].best->matched, "lib");
  // The query could not stay resident (library is pinned, bound is 1).
  EXPECT_EQ(reports[0].submission.corpus_index, kNoIndex);
  EXPECT_EQ(service.resident(), 1u);
  EXPECT_TRUE(service.contains("lib"));
}

TEST(AuditService, ResubmittingResidentNameReplacesItsRow) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  AuditOptions options;
  options.scorer.delta = -2.0F;
  AuditService service(model, options);
  ASSERT_TRUE(service.add_library("lib", entries[0].tensors).accepted);

  ASSERT_TRUE(service.submit("x", entries[1].tensors));
  (void)service.screen();
  ASSERT_TRUE(service.contains("x"));
  const float before = service.corpus().score(service.index_of("lib"),
                                              service.index_of("x"));

  ASSERT_TRUE(service.submit("x", entries[2].tensors));
  (void)service.screen();
  EXPECT_EQ(service.resident(), 2u);
  const float after = service.corpus().score(service.index_of("lib"),
                                             service.index_of("x"));
  // entries[1] and entries[2] are different designs, so replacing the
  // row must change the cached score.
  EXPECT_NE(before, after);
}

TEST(AuditService, TopKIndicesConsistentWithNames) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  AuditOptions options;
  options.scorer.delta = -2.0F;
  AuditService service(model, options);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.add_library(entries[i]).accepted);
  }
  const std::vector<Verdict> nearest = service.top_k(entries[0].name, 3);
  ASSERT_EQ(nearest.size(), 3u);
  for (const Verdict& v : nearest) {
    ASSERT_NE(v.corpus_index, kNoIndex);
    EXPECT_EQ(service.name(v.corpus_index), v.matched);
    EXPECT_TRUE(v.flagged);  // delta is -2: every match flags
  }
  for (std::size_t i = 1; i < nearest.size(); ++i) {
    EXPECT_GE(nearest[i - 1].similarity, nearest[i].similarity);
  }
  EXPECT_THROW((void)service.top_k("not-resident", 1),
               util::ContractViolation);
}

TEST(AuditService, BoundedQueueRefusesBeyondCapacityUntilScreened) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  AuditOptions options;
  options.queue_capacity = 2;
  AuditService service(model, options);
  EXPECT_TRUE(service.submit("a", entries[0].tensors));
  EXPECT_TRUE(service.submit("b", entries[1].tensors));
  EXPECT_FALSE(service.submit("c", entries[2].tensors));
  EXPECT_EQ(service.pending(), 2u);
  EXPECT_EQ(service.screen().size(), 2u);
  EXPECT_EQ(service.pending(), 0u);
  EXPECT_TRUE(service.submit("c", entries[2].tensors));
}

TEST(AuditService, CorpusDimMatchesModelEmbeddingDim) {
  // Guards Hw2Vec::embedding_dim() against drifting from the width the
  // readout actually produces (the resident cache fixes its dim from a
  // real embedding).
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  AuditService service(model);
  ASSERT_TRUE(service.add_library(entries[0]).accepted);
  EXPECT_EQ(service.corpus().dim(), service.model().embedding_dim());
}

TEST(AuditService, EmptyScreenIsANoOp) {
  gnn::Hw2Vec model;
  AuditService service(model);
  EXPECT_TRUE(service.screen().empty());
  EXPECT_EQ(service.resident(), 0u);
}

TEST(CompileRtl, ReportsDiagnosticsInsteadOfThrowing) {
  const CompileResult good = compile_rtl(
      "module T (input a, output y);\n  assign y = a;\nendmodule\n");
  ASSERT_TRUE(good.ok);
  EXPECT_GT(good.design.tensors.num_nodes, 0u);

  const CompileResult bad = compile_rtl("module T (input a,,\n");
  ASSERT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.message.empty());
  EXPECT_GT(bad.error.location.line, 0);
  EXPECT_NE(bad.error.to_string().find(':'), std::string::npos);
}

TEST(Pipeline, CompileBatchAlignsResultsWithSources) {
  const Pipeline pipeline;
  const std::vector<std::string> sources = {
      "module A (input a, output y);\n  assign y = a;\nendmodule\n",
      "module broken (",
      "module B (input a, input b, output y);\n  assign y = a & b;\n"
      "endmodule\n",
  };
  for (std::size_t threads : {1u, 4u}) {
    const std::vector<CompileResult> results =
        pipeline.compile_batch(sources, threads);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_TRUE(results[2].ok);
    EXPECT_FALSE(results[1].error.message.empty());
  }
}

TEST(AsyncAuditor, FuturesMatchSynchronousScreenBitForBit) {
  // The daemon changes when screen() runs, never its arithmetic: the
  // reports delivered through futures equal a synchronous service's,
  // bit for bit, including with a sharded corpus underneath.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 6u);
  const std::size_t library = 4;

  AuditOptions options;
  options.scorer.delta = -2.0F;
  // Screened submissions must not stay resident: the daemon batches
  // adaptively, and a design kept from an earlier batch would add
  // verdicts to later ones.
  options.max_resident = library;
  options.num_shards = 2;

  AuditService sync(model, options);
  for (std::size_t i = 0; i < library; ++i) {
    ASSERT_TRUE(sync.add_library(entries[i]).accepted);
  }
  std::vector<ScreenReport> expected;
  for (std::size_t i = library; i < entries.size(); ++i) {
    ASSERT_TRUE(sync.submit(entries[i]));
    for (ScreenReport& r : sync.screen()) expected.push_back(std::move(r));
  }

  AsyncAuditor auditor(model, options);
  for (std::size_t i = 0; i < library; ++i) {
    ASSERT_TRUE(auditor.service().add_library(entries[i]).accepted);
  }
  std::vector<std::future<ScreenReport>> futures;
  for (std::size_t i = library; i < entries.size(); ++i) {
    futures.push_back(auditor.submit(entries[i]));
  }
  ASSERT_EQ(futures.size(), expected.size());
  for (std::size_t r = 0; r < futures.size(); ++r) {
    const ScreenReport got = futures[r].get();
    const ScreenReport& want = expected[r];
    EXPECT_EQ(got.submission.name, want.submission.name);
    EXPECT_EQ(got.submission.accepted, want.submission.accepted);
    ASSERT_EQ(got.verdicts.size(), want.verdicts.size());
    for (std::size_t v = 0; v < want.verdicts.size(); ++v) {
      EXPECT_EQ(got.verdicts[v].matched, want.verdicts[v].matched);
      EXPECT_EQ(got.verdicts[v].similarity, want.verdicts[v].similarity);
    }
    ASSERT_EQ(got.best.has_value(), want.best.has_value());
    if (want.best) {
      EXPECT_EQ(got.best->matched, want.best->matched);
      EXPECT_EQ(got.best->similarity, want.best->similarity);
    }
  }
  auditor.quiesce();
  EXPECT_EQ(auditor.reported(), futures.size());
  EXPECT_GE(auditor.batches(), 1u);
}

TEST(AsyncAuditor, MalformedDesignResolvesItsFutureWithDiagnostic) {
  gnn::Hw2Vec model;
  const auto items = small_corpus_items();
  AsyncAuditor auditor(model);
  ASSERT_TRUE(
      auditor.service().add_library(items[0].name, items[0].verilog)
          .accepted);
  std::future<ScreenReport> good =
      auditor.submit("good", items[1].verilog);
  std::future<ScreenReport> bad =
      auditor.submit("broken", "module oops (input a, ;;;");
  const ScreenReport good_report = good.get();
  EXPECT_TRUE(good_report.submission.accepted);
  const ScreenReport bad_report = bad.get();
  EXPECT_FALSE(bad_report.submission.accepted);
  EXPECT_FALSE(bad_report.submission.error.message.empty());
  EXPECT_GT(bad_report.submission.error.location.line, 0);
}

TEST(AsyncAuditor, CallbackFiresOnConsumerThreadInScreeningOrder) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 4u);

  std::vector<std::string> seen;  // consumer-thread only, read after quiesce
  AsyncOptions async;
  async.on_report = [&seen](const ScreenReport& report) {
    seen.push_back(report.submission.name);
  };
  AuditOptions options;
  options.scorer.delta = -2.0F;
  AsyncAuditor auditor(model, options, std::move(async));
  std::vector<std::future<ScreenReport>> futures;
  for (std::size_t i = 0; i < 4; ++i) {
    futures.push_back(auditor.submit(entries[i]));
  }
  auditor.quiesce();
  ASSERT_EQ(seen.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(seen[i], entries[i].name);  // FIFO screening order
    EXPECT_EQ(futures[i].get().submission.name, entries[i].name);
  }
}

TEST(AsyncAuditor, CloseDrainsBacklogAndFulfilsEveryFuture) {
  // Submissions accepted before close() are screened, not dropped —
  // drain-on-close end to end.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 6u);
  AuditOptions options;
  options.scorer.delta = -2.0F;
  AsyncAuditor auditor(model, options);
  std::vector<std::future<ScreenReport>> futures;
  for (std::size_t i = 0; i < 6; ++i) {
    futures.push_back(auditor.submit(entries[i]));
  }
  auditor.close();
  EXPECT_TRUE(auditor.closed());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ScreenReport report = futures[i].get();  // never a broken promise
    EXPECT_TRUE(report.submission.accepted) << report.submission.name;
  }
  EXPECT_EQ(auditor.reported(), futures.size());

  // After close, a submission resolves immediately with a rejection.
  std::future<ScreenReport> late = auditor.submit(entries[0]);
  const ScreenReport rejected = late.get();
  EXPECT_FALSE(rejected.submission.accepted);
  EXPECT_NE(rejected.submission.error.message.find("closed"),
            std::string::npos);
}

TEST(AsyncAuditor, ConcurrentProducersAllGetReports) {
  // Several producer threads hammer submit() while the daemon screens
  // continuously; every future resolves with the submission's own name.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 4u);
  AuditOptions options;
  options.scorer.delta = -2.0F;
  options.max_resident = 1;  // constant churn through evict+compact
  AsyncAuditor auditor(model, options);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 8;
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const train::GraphEntry& entry = entries[(p + i) % 4];
        const std::string name =
            "p" + std::to_string(p) + "#" + std::to_string(i);
        std::future<ScreenReport> future =
            auditor.submit(name, entry.tensors);
        const ScreenReport report = future.get();
        if (report.submission.name != name || !report.submission.accepted) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  auditor.quiesce();
  EXPECT_EQ(auditor.reported(), kProducers * kPerProducer);
  EXPECT_EQ(auditor.submitted(), kProducers * kPerProducer);
}

TEST(LruEvictionPolicy, EvictsColdestEvictableEntry) {
  LruEvictionPolicy lru;
  lru.touch("a");
  lru.touch("b");
  lru.touch("c");
  lru.touch("a");  // "b" is now coldest
  const auto any = [](const std::string&) { return true; };
  ASSERT_TRUE(lru.victim(any).has_value());
  EXPECT_EQ(*lru.victim(any), "b");
  // Pinned-style exclusion: skip "b", evict next-coldest.
  EXPECT_EQ(*lru.victim([](const std::string& n) { return n != "b"; }), "c");
  lru.erase("b");
  EXPECT_EQ(*lru.victim(any), "c");
  lru.erase("a");
  lru.erase("c");
  EXPECT_FALSE(lru.victim(any).has_value());
}

}  // namespace
}  // namespace gnn4ip::audit
