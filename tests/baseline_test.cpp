// Classical graph-similarity baseline tests.
#include <gtest/gtest.h>

#include <chrono>

#include "baseline/graph_similarity.h"
#include "data/rtl_designs.h"
#include "dfg/pipeline.h"
#include "graph/digraph.h"
#include "util/contract.h"

namespace gnn4ip::baseline {
namespace {

graph::Digraph star(int leaves, int center_kind, int leaf_kind) {
  graph::Digraph g;
  g.add_node("c", center_kind);
  for (int i = 0; i < leaves; ++i) {
    g.add_node("l" + std::to_string(i), leaf_kind);
    g.add_edge(0, static_cast<graph::NodeId>(i + 1));
  }
  return g;
}

TEST(NeighborMatching, IdenticalGraphsScoreOne) {
  const graph::Digraph g = star(4, 1, 2);
  EXPECT_NEAR(neighbor_matching_similarity(g, g), 1.0, 1e-6);
}

TEST(NeighborMatching, DisjointKindsScoreLow) {
  const graph::Digraph a = star(4, 1, 2);
  const graph::Digraph b = star(4, 7, 8);
  EXPECT_LT(neighbor_matching_similarity(a, b), 0.5);
}

TEST(NeighborMatching, PartialOverlapBetween) {
  const graph::Digraph a = star(4, 1, 2);
  const graph::Digraph b = star(8, 1, 2);  // same kinds, different size
  const double s = neighbor_matching_similarity(a, b);
  EXPECT_GT(s, 0.2);
  EXPECT_LT(s, 1.0);
}

TEST(NeighborMatching, SymmetricUpToGreedyTies) {
  const graph::Digraph a = star(3, 1, 2);
  const graph::Digraph b = star(5, 1, 3);
  const double ab = neighbor_matching_similarity(a, b);
  const double ba = neighbor_matching_similarity(b, a);
  EXPECT_NEAR(ab, ba, 0.05);
}

TEST(NeighborMatching, EmptyGraphRejected) {
  graph::Digraph empty;
  const graph::Digraph g = star(2, 1, 2);
  EXPECT_THROW((void)neighbor_matching_similarity(empty, g),
               util::ContractViolation);
}

TEST(WlHistogram, IdenticalGraphsScoreOne) {
  const graph::Digraph g = star(5, 1, 2);
  EXPECT_NEAR(wl_histogram_similarity(g, g), 1.0, 1e-9);
}

TEST(WlHistogram, DifferentKindsScoreZero) {
  const graph::Digraph a = star(5, 1, 2);
  const graph::Digraph b = star(5, 3, 4);
  EXPECT_NEAR(wl_histogram_similarity(a, b), 0.0, 1e-9);
}

TEST(WlHistogram, MoreRoundsMoreDiscrimination) {
  // A chain and a star with identical kind multiset: round-0 histograms
  // collide, deeper rounds separate them.
  graph::Digraph chain;
  chain.add_node("a", 1);
  chain.add_node("b", 2);
  chain.add_node("c", 2);
  chain.add_node("d", 2);
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  chain.add_edge(2, 3);
  const graph::Digraph s = star(3, 1, 2);
  const double shallow = wl_histogram_similarity(chain, s, {.rounds = 0});
  const double deep = wl_histogram_similarity(chain, s, {.rounds = 3});
  EXPECT_LT(deep, shallow);
}

TEST(Baselines, RenameOnlyVariantsMoreSimilarThanCrossDesign) {
  // Classical similarity handles *topological* identity (same style,
  // different names) but not the paper's same-behavior-different-topology
  // challenge — that failure mode is exactly why GNN4IP exists, and the
  // rivals bench quantifies it. Here we check the capability the
  // baseline does have.
  using data::RtlVariant;
  const graph::Digraph adder_a =
      dfg::extract_dfg(data::gen_adder(RtlVariant{1, 1}));
  const graph::Digraph adder_b =
      dfg::extract_dfg(data::gen_adder(RtlVariant{1, 2}));  // same style
  const graph::Digraph alu =
      dfg::extract_dfg(data::gen_alu(RtlVariant{0, 3}));
  const double same_wl = wl_histogram_similarity(adder_a, adder_b);
  const double cross_wl = wl_histogram_similarity(adder_a, alu);
  EXPECT_GT(same_wl, cross_wl);
}

TEST(Baselines, NeighborMatchingIsSlowerThanWl) {
  // The §IV-F claim: classical matching is orders slower. Verify the
  // ordering on mid-size DFGs without asserting absolute times.
  const graph::Digraph g1 =
      dfg::extract_dfg(data::gen_mips_single({0, 1}));
  const graph::Digraph g2 =
      dfg::extract_dfg(data::gen_mips_single({1, 2}));
  const auto t0 = std::chrono::steady_clock::now();
  (void)wl_histogram_similarity(g1, g2);
  const auto t1 = std::chrono::steady_clock::now();
  (void)neighbor_matching_similarity(g1, g2, {.iterations = 4});
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_GT((t2 - t1).count(), (t1 - t0).count());
}

}  // namespace
}  // namespace gnn4ip::baseline
