// Tests for contract checking, string helpers, the deterministic RNG,
// and the worker pool behind the parallel embedding pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/bounded_queue.h"
#include "util/contract.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace gnn4ip::util {
namespace {

TEST(Contract, ThrowsWithLocationAndMessage) {
  try {
    GNN4IP_ENSURE(1 == 2, "math is broken");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Contract, PassesSilently) {
  EXPECT_NO_THROW(GNN4IP_ENSURE(2 + 2 == 4, "unused"));
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("module foo", "module"));
  EXPECT_FALSE(starts_with("mod", "module"));
  EXPECT_TRUE(ends_with("foo.v", ".v"));
  EXPECT_FALSE(ends_with("v", ".v"));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("xyx", "y", ""), "xx");
  EXPECT_EQ(replace_all("abc", "", "z"), "abc");
}

TEST(StringUtil, IsIdentifier) {
  EXPECT_TRUE(is_identifier("foo_1"));
  EXPECT_TRUE(is_identifier("_x$y"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(StringUtil, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%zu", static_cast<std::size_t>(7)), "7");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyStandardMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, FlipProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.flip(0.25)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.03);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(21);
  Rng child = a.fork();
  // Child stream differs from parent's continued stream.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(x, -2.0F);
    EXPECT_LT(x, 3.0F);
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.size(), workers);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(10, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(ThreadPool, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesFirstException) {
  for (const std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [](std::size_t i) {
                            if (i == 17) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(4, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 6u);
  }
}

TEST(ThreadPool, ConcurrentExternalCallersAreSerialized) {
  // Two application threads sharing one pool must not corrupt each
  // other's batches (batch state is one slot; callers serialize).
  ThreadPool pool(4);
  std::vector<std::size_t> a(200, 0);
  std::vector<std::size_t> b(200, 0);
  std::thread caller_a([&] {
    for (int rep = 0; rep < 20; ++rep) {
      pool.parallel_for(a.size(), [&](std::size_t i) { a[i] = i + 1; });
    }
  });
  std::thread caller_b([&] {
    for (int rep = 0; rep < 20; ++rep) {
      pool.parallel_for(b.size(), [&](std::size_t i) { b[i] = i + 7; });
    }
  });
  caller_a.join();
  caller_b.join();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], i + 1);
    EXPECT_EQ(b[i], i + 7);
  }
}

TEST(ThreadPool, DeterministicSlotWritesForAnyWorkerCount) {
  // The fan-out contract: worker count never changes per-index results.
  auto run = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(64);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += std::sin(i + k * 0.1);
      out[i] = acc;
    });
    return out;
  };
  const std::vector<double> one = run(1);
  const std::vector<double> two = run(2);
  const std::vector<double> eight = run(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnvKnob) {
  ASSERT_EQ(setenv("GNN4IP_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  ASSERT_EQ(setenv("GNN4IP_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("GNN4IP_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ParallelMapReduce, FoldOrderIsIndexOrderForAnyWorkerCount) {
  // map runs on the pool; the fold must run afterwards, sequentially, in
  // index order — so an order-sensitive float reduction is bit-identical
  // for any worker count.
  auto run = [](std::size_t num_threads) {
    std::vector<float> mapped(64);
    float folded = 1.0F;
    std::vector<std::size_t> fold_order;
    parallel_map_reduce(
        mapped.size(), num_threads,
        [&](std::size_t i) {
          mapped[i] = 1.0F + 1.0F / static_cast<float>(i + 1);
        },
        [&](std::size_t i) {
          folded *= mapped[i];  // deliberately non-associative-friendly
          fold_order.push_back(i);
        });
    for (std::size_t i = 0; i < fold_order.size(); ++i) {
      EXPECT_EQ(fold_order[i], i);
    }
    return folded;
  };
  const float one = run(1);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(8), one);
  EXPECT_EQ(run(0), one);
}

TEST(ParallelFor, ExplicitCountsAndSharedPoolAgree) {
  auto run = [](std::size_t num_threads) {
    std::vector<std::size_t> out(32);
    parallel_for(out.size(), num_threads,
                 [&](std::size_t i) { out[i] = i * i; });
    return out;
  };
  const auto expected = run(1);
  EXPECT_EQ(run(2), expected);
  EXPECT_EQ(run(8), expected);
  EXPECT_EQ(run(0), expected);  // shared pool
}

TEST(BoundedQueue, TryPushRefusesBeyondCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.size(), 2u);
  const std::vector<int> batch = queue.drain();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);  // FIFO order
  EXPECT_EQ(batch[1], 2);
  EXPECT_TRUE(queue.empty());
  EXPECT_TRUE(queue.try_push(3));
}

TEST(BoundedQueue, DrainOnEmptyReturnsNothing) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.drain().empty());
}

TEST(BoundedQueue, BlockingPushResumesAfterDrain) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(1));
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));  // blocks until drain
  });
  std::vector<int> first = queue.drain();
  producer.join();
  std::vector<int> second = queue.drain();
  ASSERT_EQ(first.size() + second.size(), 2u);
  EXPECT_EQ(first[0], 1);
}

TEST(BoundedQueue, PushAfterCloseFailsAndValueSurvives) {
  BoundedQueue<std::string> queue(4);
  EXPECT_TRUE(queue.try_push("before"));
  queue.close();
  EXPECT_TRUE(queue.closed());
  std::string kept = "after";
  EXPECT_FALSE(queue.try_push(std::move(kept)));
  EXPECT_EQ(kept, "after");  // untouched on refusal
  EXPECT_FALSE(queue.push(std::move(kept)));
  EXPECT_EQ(kept, "after");
  EXPECT_EQ(queue.size(), 1u);  // only the pre-close item is pending
}

TEST(BoundedQueue, PopDrainsRemainingThenReportsClosed) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  queue.close();
  // Drain-on-close: everything accepted before close() is still
  // delivered, in FIFO order, and only then does pop() report closed.
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.pop(), std::nullopt);  // stays closed
}

TEST(BoundedQueue, PopForTimesOutEmptyHanded) {
  BoundedQueue<int> queue(4);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.pop_for(std::chrono::milliseconds(10)), std::nullopt);
  // The deadline actually bounds the wait — no indefinite block on an
  // empty queue (the accept-loop contract).
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(9));
  EXPECT_FALSE(queue.closed());  // a timeout is not a close
}

TEST(BoundedQueue, PopForReturnsItemArrivingMidWait) {
  BoundedQueue<int> queue(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(queue.try_push(7));
  });
  // A generous deadline: the item must arrive well before it, and
  // pop_for must hand it over rather than sleep out the full window.
  EXPECT_EQ(queue.pop_for(std::chrono::seconds(10)), std::optional<int>(7));
  producer.join();
}

TEST(BoundedQueue, PopForImmediateWhenItemPending) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  // Zero deadline with an item already queued: delivery, not a timeout.
  EXPECT_EQ(queue.pop_for(std::chrono::milliseconds(0)),
            std::optional<int>(1));
}

TEST(BoundedQueue, PopForDrainsThenReportsClosed) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  queue.close();
  // Drain-on-close parity with pop(): the pre-close item first, then
  // nullopt immediately (closed + empty never waits out the deadline).
  EXPECT_EQ(queue.pop_for(std::chrono::seconds(10)), std::optional<int>(1));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.pop_for(std::chrono::seconds(10)), std::nullopt);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
}

TEST(BoundedQueue, CloseWakesPopForMidWait) {
  BoundedQueue<int> queue(4);
  std::optional<int> result = 42;
  std::thread consumer([&] {
    result = queue.pop_for(std::chrono::seconds(30));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  queue.close();
  consumer.join();  // must return promptly, not after 30s
  EXPECT_EQ(result, std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::optional<int> result = 42;
  std::thread consumer([&] { result = queue.pop(); });  // blocks: empty
  queue.close();
  consumer.join();
  EXPECT_EQ(result, std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(1));  // queue now full
  bool pushed = true;
  std::thread producer([&] { pushed = queue.push(2); });  // blocks: full
  queue.close();
  producer.join();
  EXPECT_FALSE(pushed);
  // The pre-close item is still poppable after the failed push.
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, ConcurrentProducersRacingCloseLoseNothingAccepted) {
  // Producers hammer try_push while the main thread closes mid-stream; a
  // consumer drains with pop() until the queue reports closed. Every
  // accepted push must come out exactly once — acceptance and delivery
  // may race close(), but never tear. Producers retry on "full" but bail
  // out on "closed", so the test terminates no matter how the close
  // lands relative to their progress.
  BoundedQueue<int> queue(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!queue.try_push(p * kPerProducer + i)) {
          if (queue.closed()) return;  // lost the race: stop producing
          std::this_thread::yield();   // full: wait for the consumer
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::atomic<int> delivered{0};
  std::thread consumer([&queue, &delivered] {
    while (queue.pop().has_value()) {
      delivered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Let some traffic through, then slam the door while producers race.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  queue.close();
  for (std::thread& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(delivered.load(), accepted.load());
  EXPECT_TRUE(queue.empty());
  // And the door stays shut.
  EXPECT_FALSE(queue.try_push(-1));
}

TEST(BoundedQueue, ConcurrentProducersLoseNothing) {
  BoundedQueue<int> queue(1024);
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.try_push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  std::vector<int> all = queue.drain();
  ASSERT_EQ(all.size(), 4u * kPerProducer);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 4 * kPerProducer; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace gnn4ip::util
