// Tests for contract checking, string helpers, and the deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contract.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace gnn4ip::util {
namespace {

TEST(Contract, ThrowsWithLocationAndMessage) {
  try {
    GNN4IP_ENSURE(1 == 2, "math is broken");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Contract, PassesSilently) {
  EXPECT_NO_THROW(GNN4IP_ENSURE(2 + 2 == 4, "unused"));
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("module foo", "module"));
  EXPECT_FALSE(starts_with("mod", "module"));
  EXPECT_TRUE(ends_with("foo.v", ".v"));
  EXPECT_FALSE(ends_with("v", ".v"));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("xyx", "y", ""), "xx");
  EXPECT_EQ(replace_all("abc", "", "z"), "abc");
}

TEST(StringUtil, IsIdentifier) {
  EXPECT_TRUE(is_identifier("foo_1"));
  EXPECT_TRUE(is_identifier("_x$y"));
  EXPECT_FALSE(is_identifier("1abc"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a b"));
}

TEST(StringUtil, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%zu", static_cast<std::size_t>(7)), "7");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyStandardMoments) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, FlipProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.flip(0.25)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.03);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(21);
  Rng child = a.fork();
  // Child stream differs from parent's continued stream.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(x, -2.0F);
    EXPECT_LT(x, 3.0F);
  }
}

}  // namespace
}  // namespace gnn4ip::util
