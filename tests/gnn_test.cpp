// GNN layer tests: featurization, GCN propagation, SAGPool, readout,
// hw2vec end-to-end, and model serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dfg/node_kind.h"
#include "dfg/pipeline.h"
#include "gnn/featurize.h"
#include "gnn/gcn_layer.h"
#include "gnn/hw2vec.h"
#include "gnn/model_io.h"
#include "gnn/readout.h"
#include "gnn/sag_pool.h"
#include "util/contract.h"

namespace gnn4ip::gnn {
namespace {

graph::Digraph tiny_graph() {
  graph::Digraph g;
  g.add_node("out", static_cast<int>(dfg::NodeKind::kOutput));
  g.add_node("op", static_cast<int>(dfg::NodeKind::kXor));
  g.add_node("a", static_cast<int>(dfg::NodeKind::kInput));
  g.add_node("b", static_cast<int>(dfg::NodeKind::kInput));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  return g;
}

TEST(Featurize, OneHotRows) {
  const GraphTensors t = featurize(tiny_graph());
  ASSERT_EQ(t.x.rows(), 4u);
  ASSERT_EQ(t.x.cols(), static_cast<std::size_t>(dfg::kNodeKindCount));
  // Each row sums to exactly 1.
  for (std::size_t r = 0; r < t.x.rows(); ++r) {
    float sum = 0.0F;
    for (float v : t.x.row(r)) sum += v;
    EXPECT_FLOAT_EQ(sum, 1.0F);
  }
  EXPECT_FLOAT_EQ(t.x.at(0, static_cast<std::size_t>(dfg::NodeKind::kOutput)),
                  1.0F);
}

TEST(Featurize, NormalizedAdjacencyRowsAreFinite) {
  const GraphTensors t = featurize(tiny_graph());
  const tensor::Matrix dense = t.adj->to_dense();
  for (float v : dense.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
  // Self-loops present: diagonal strictly positive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(dense.at(i, i), 0.0F);
  }
}

TEST(Featurize, SymmetrizeControlsOffDiagonal) {
  GraphTensors sym = featurize(tiny_graph(), {.symmetrize = true});
  GraphTensors asym = featurize(tiny_graph(), {.symmetrize = false});
  const tensor::Matrix ds = sym.adj->to_dense();
  const tensor::Matrix da = asym.adj->to_dense();
  // Edge 1->2 exists; reverse only in symmetric mode.
  EXPECT_GT(ds.at(2, 1), 0.0F);
  EXPECT_FLOAT_EQ(da.at(2, 1), 0.0F);
  EXPECT_GT(da.at(1, 2), 0.0F);
}

TEST(Featurize, NormalizationMatchesEq5ByHand) {
  // Two nodes, one edge, symmetric: Â = [[1,1],[1,1]], D̂ = diag(2,2)
  // -> normalized entries all 1/2.
  graph::Digraph g;
  g.add_node("a", 0);
  g.add_node("b", 1);
  g.add_edge(0, 1);
  const GraphTensors t = featurize(g);
  const tensor::Matrix dense = t.adj->to_dense();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(dense.at(i, j), 0.5F, 1e-6F);
    }
  }
}

TEST(Featurize, EmptyGraphRejected) {
  graph::Digraph g;
  EXPECT_THROW(featurize(g), util::ContractViolation);
}

TEST(GcnLayer, OutputShapeAndRelu) {
  util::Rng rng(1);
  GcnLayer layer(static_cast<std::size_t>(dfg::kNodeKindCount), 8, rng);
  const GraphTensors t = featurize(tiny_graph());
  tensor::Tape tape;
  tensor::Var x = tape.constant(t.x);
  tensor::Var y = layer.forward(tape, t.adj, x);
  EXPECT_EQ(y.value().rows(), 4u);
  EXPECT_EQ(y.value().cols(), 8u);
  for (float v : y.value().data()) EXPECT_GE(v, 0.0F);  // ReLU
}

TEST(GcnLayer, PropagationMixesNeighborFeatures) {
  // With identity-ish weights, a node's output depends on neighbors.
  util::Rng rng(2);
  GcnLayer layer(static_cast<std::size_t>(dfg::kNodeKindCount), 4, rng);
  const GraphTensors t = featurize(tiny_graph());
  tensor::Tape tape;
  tensor::Var x = tape.constant(t.x);
  tensor::Var y1 = layer.forward(tape, t.adj, x, /*apply_relu=*/false);

  // Zero out the op-node's neighbors' features: output at op changes.
  tensor::Matrix x2 = t.x;
  for (std::size_t c = 0; c < x2.cols(); ++c) {
    x2.at(2, c) = 0.0F;
    x2.at(3, c) = 0.0F;
  }
  tensor::Var vx2 = tape.constant(x2);
  tensor::Var y2 = layer.forward(tape, t.adj, vx2, false);
  float diff = 0.0F;
  for (std::size_t c = 0; c < 4; ++c) {
    diff += std::fabs(y1.value().at(1, c) - y2.value().at(1, c));
  }
  EXPECT_GT(diff, 1e-6F);
}

TEST(SagPool, KeepsCeilRatioNodes) {
  util::Rng rng(3);
  SagPool pool(4, 0.5F, rng);
  GcnLayer embed(static_cast<std::size_t>(dfg::kNodeKindCount), 4, rng);
  const GraphTensors t = featurize(tiny_graph());
  tensor::Tape tape;
  tensor::Var x = tape.constant(t.x);
  tensor::Var h = embed.forward(tape, t.adj, x);
  const SagPool::Result r = pool.forward(tape, t, h);
  EXPECT_EQ(r.kept.size(), 2u);  // ceil(0.5 * 4)
  EXPECT_EQ(r.x.value().rows(), 2u);
  EXPECT_EQ(r.adj->rows(), 2u);
}

TEST(SagPool, RatioOneKeepsAll) {
  util::Rng rng(4);
  SagPool pool(4, 1.0F, rng);
  GcnLayer embed(static_cast<std::size_t>(dfg::kNodeKindCount), 4, rng);
  const GraphTensors t = featurize(tiny_graph());
  tensor::Tape tape;
  tensor::Var x = tape.constant(t.x);
  tensor::Var h = embed.forward(tape, t.adj, x);
  const SagPool::Result r = pool.forward(tape, t, h);
  EXPECT_EQ(r.kept.size(), 4u);
}

TEST(SagPool, PooledEdgesAreInduced) {
  util::Rng rng(5);
  SagPool pool(4, 0.75F, rng);  // keep 3 of 4
  GcnLayer embed(static_cast<std::size_t>(dfg::kNodeKindCount), 4, rng);
  const GraphTensors t = featurize(tiny_graph());
  tensor::Tape tape;
  tensor::Var x = tape.constant(t.x);
  tensor::Var h = embed.forward(tape, t.adj, x);
  const SagPool::Result r = pool.forward(tape, t, h);
  // Every pooled edge's endpoints must be within range.
  for (const auto& [s, d] : r.edges) {
    EXPECT_LT(s, r.kept.size());
    EXPECT_LT(d, r.kept.size());
  }
}

TEST(SagPool, PooledAdjacencyServedFromCacheOnRepeat) {
  util::Rng rng(8);
  SagPool pool(4, 0.5F, rng);
  GcnLayer embed(static_cast<std::size_t>(dfg::kNodeKindCount), 4, rng);
  const GraphTensors t = featurize(tiny_graph());
  ASSERT_NE(t.pooled_cache, nullptr);
  EXPECT_EQ(t.pooled_cache->size(), 0u);

  tensor::Tape tape;
  tensor::Var x = tape.constant(t.x);
  tensor::Var h = embed.forward(tape, t.adj, x);
  const SagPool::Result r1 = pool.forward(tape, t, h);
  EXPECT_EQ(t.pooled_cache->size(), 1u);
  // Same weights, same graph -> same kept set -> the cached CSR object
  // itself is returned, and no new entry appears.
  const SagPool::Result r2 = pool.forward(tape, t, h);
  EXPECT_EQ(t.pooled_cache->size(), 1u);
  EXPECT_EQ(r1.adj.get(), r2.adj.get());
  EXPECT_EQ(r1.kept, r2.kept);
  // A cache-less GraphTensors still works (computed directly).
  GraphTensors bare = t;
  bare.pooled_cache = nullptr;
  const SagPool::Result r3 = pool.forward(tape, bare, h);
  EXPECT_EQ(r3.kept, r1.kept);
  EXPECT_EQ(tensor::max_abs_diff(r3.adj->to_dense(), r1.adj->to_dense()),
            0.0F);
}

TEST(SagPool, InvalidRatioRejected) {
  util::Rng rng(6);
  EXPECT_THROW(SagPool(4, 0.0F, rng), util::ContractViolation);
  EXPECT_THROW(SagPool(4, 1.5F, rng), util::ContractViolation);
}

TEST(Readout, StringRoundTrip) {
  EXPECT_EQ(readout_from_string("max"), Readout::kMax);
  EXPECT_EQ(readout_from_string("mean"), Readout::kMean);
  EXPECT_EQ(readout_from_string("sum"), Readout::kSum);
  EXPECT_STREQ(to_string(Readout::kMax), "max");
  EXPECT_THROW((void)readout_from_string("median"), std::invalid_argument);
}

TEST(Readout, AppliesSelectedOperation) {
  tensor::Tape tape;
  tensor::Var x =
      tape.constant(tensor::Matrix::from_rows({{1, 4}, {3, 2}}));
  EXPECT_FLOAT_EQ(apply_readout(tape, x, Readout::kSum).value().at(0, 0),
                  4.0F);
  EXPECT_FLOAT_EQ(apply_readout(tape, x, Readout::kMean).value().at(0, 1),
                  3.0F);
  EXPECT_FLOAT_EQ(apply_readout(tape, x, Readout::kMax).value().at(0, 0),
                  3.0F);
  EXPECT_FLOAT_EQ(apply_readout(tape, x, Readout::kMax).value().at(0, 1),
                  4.0F);
}

TEST(Hw2Vec, EmbeddingShapeMatchesHidden) {
  Hw2VecConfig config;
  config.hidden_dim = 16;
  Hw2Vec model(config);
  const GraphTensors t = featurize(tiny_graph());
  const tensor::Matrix h = model.embed_inference(t);
  EXPECT_EQ(h.rows(), 1u);
  EXPECT_EQ(h.cols(), 16u);
}

TEST(Hw2Vec, DeterministicInference) {
  Hw2Vec model;
  const GraphTensors t = featurize(tiny_graph());
  const tensor::Matrix h1 = model.embed_inference(t);
  const tensor::Matrix h2 = model.embed_inference(t);
  EXPECT_LT(tensor::max_abs_diff(h1, h2), 1e-7F);
}

TEST(Hw2Vec, SeedChangesWeights) {
  Hw2VecConfig c1;
  c1.seed = 1;
  Hw2VecConfig c2;
  c2.seed = 2;
  Hw2Vec m1(c1);
  Hw2Vec m2(c2);
  const GraphTensors t = featurize(tiny_graph());
  EXPECT_GT(tensor::max_abs_diff(m1.embed_inference(t),
                                 m2.embed_inference(t)),
            1e-6F);
}

TEST(Hw2Vec, ParameterCount) {
  Hw2VecConfig config;
  config.num_layers = 2;
  Hw2Vec model(config);
  // 2 convs × (W, b) + scorer (W, b) = 6 parameters.
  EXPECT_EQ(model.parameters().size(), 6u);
}

TEST(Hw2Vec, GradientsFlowToAllParameters) {
  Hw2Vec model;
  const GraphTensors t = featurize(tiny_graph());
  util::Rng rng(7);
  tensor::Tape tape;
  tensor::Var h = model.embed(tape, t, rng, /*training=*/false);
  tensor::Var target =
      tape.constant(tensor::Matrix::ones(1, h.value().cols()));
  tensor::Var sim = tape.cosine_similarity(h, target);
  tensor::Var loss = tape.cosine_embedding_loss(sim, 1, 0.5F);
  tape.backward(loss);
  int with_grad = 0;
  for (tensor::Parameter* p : model.parameters()) {
    if (p->grad.max_abs() > 0.0F) ++with_grad;
  }
  // At minimum both conv weights and the scorer weight receive gradient.
  EXPECT_GE(with_grad, 3);
}

TEST(Hw2Vec, RealDfgEndToEnd) {
  const graph::Digraph g = dfg::extract_dfg(
      "module m (input [3:0] a, input [3:0] b, output [3:0] y);\n"
      "  assign y = (a & b) | (a ^ b);\n"
      "endmodule\n");
  Hw2Vec model;
  const tensor::Matrix h = model.embed_inference(featurize(g));
  EXPECT_EQ(h.cols(), 16u);
  for (float v : h.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(ModelIo, SaveLoadRoundTrip) {
  Hw2VecConfig config;
  config.seed = 42;
  config.readout = Readout::kMean;
  config.pool_ratio = 0.25F;
  Hw2Vec model(config);
  const GraphTensors t = featurize(tiny_graph());
  const tensor::Matrix before = model.embed_inference(t);

  std::stringstream buffer;
  buffer.precision(9);
  save_model(buffer, model);
  Hw2Vec loaded = load_model(buffer);
  EXPECT_EQ(loaded.config().readout, Readout::kMean);
  EXPECT_FLOAT_EQ(loaded.config().pool_ratio, 0.25F);
  const tensor::Matrix after = loaded.embed_inference(t);
  EXPECT_LT(tensor::max_abs_diff(before, after), 1e-5F);
}

TEST(ModelIo, RejectsGarbage) {
  std::stringstream buffer("definitely not a model");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

}  // namespace
}  // namespace gnn4ip::gnn
