// SIMD dispatch + quantized prefilter tests: the acceptance bar for the
// retrieval fast lanes is that they are *invisible* to results.
//
//   * The scalar backend IS the determinism contract: its sweep is a
//     loop over cosine_cell, bit-identical to every exact scoring path.
//   * SIMD float backends reassociate adds — they only serve non-exact
//     callers and must agree with scalar to tight tolerance.
//   * Int8 dots are associative — every backend returns the same
//     integer, so prefilter candidacy never depends on the host.
//   * quantized_cosine_bounds must ENCLOSE the exact cosine — a pruned
//     candidate is provably irrelevant, so screen/top_k/flag with the
//     prefilter on are bit-identical to the exhaustive scan, for any
//     shard count × worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "audit/audit_service.h"
#include "core/cosine_kernels.h"
#include "core/embedding_store.h"
#include "core/gnn4ip.h"
#include "core/sharded_corpus.h"
#include "core/simd_dispatch.h"
#include "data/corpus.h"
#include "tensor/matrix.h"
#include "util/contract.h"
#include "util/rng.h"

namespace gnn4ip::core {
namespace {

/// Scoped GNN4IP_KERNEL override that restores the previous value (the
/// dispatcher re-reads the variable on every resolve).
class EnvGuard {
 public:
  explicit EnvGuard(const char* value) {
    const char* old = std::getenv("GNN4IP_KERNEL");
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv("GNN4IP_KERNEL", value, 1);
    } else {
      ::unsetenv("GNN4IP_KERNEL");
    }
  }
  ~EnvGuard() {
    if (saved_) {
      ::setenv("GNN4IP_KERNEL", saved_->c_str(), 1);
    } else {
      ::unsetenv("GNN4IP_KERNEL");
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::optional<std::string> saved_;
};

std::vector<KernelBackend> supported_simd_backends() {
  std::vector<KernelBackend> out;
  if (backend_supported(KernelBackend::kAvx2)) {
    out.push_back(KernelBackend::kAvx2);
  }
  if (backend_supported(KernelBackend::kNeon)) {
    out.push_back(KernelBackend::kNeon);
  }
  return out;
}

tensor::Matrix row_matrix(std::span<const float> values) {
  tensor::Matrix m(1, values.size());
  std::span<float> row = m.row(0);
  for (std::size_t k = 0; k < values.size(); ++k) row[k] = values[k];
  return m;
}

/// Synthetic embedding rows: dense uniform noise plus a sprinkling of
/// adversarial shapes (zero rows, sub-kNormFloor rows, one-hot spikes,
/// constant rows) so the edge behaviour of every kernel gets exercised.
std::vector<std::vector<float>> synth_rows(std::size_t n, std::size_t d,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> rows(n, std::vector<float>(d, 0.0F));
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 16) {
      case 7:  // all-zero row: clamps to the kNormFloor denominator
        break;
      case 11:  // below kNormFloor: denominator clamps, cosine ~0
        for (float& x : rows[i]) x = rng.uniform(-1e-10F, 1e-10F);
        break;
      case 13:  // one-hot spike
        rows[i][rng.next_below(d)] = rng.flip(0.5) ? 1.0F : -1.0F;
        break;
      case 15:  // constant row (quantizes exactly)
        for (float& x : rows[i]) x = rng.uniform(-1.0F, 1.0F);
        rows[i].assign(d, rows[i][0]);
        break;
      default:
        for (float& x : rows[i]) x = rng.uniform(-1.0F, 1.0F);
        break;
    }
  }
  return rows;
}

/// Fill `corpus` (immovable — mutexes) with `resident` rows plus
/// `fresh` incoming rows; a third of the incoming rows are
/// near-duplicates of residents so the screen has genuine piracy hits
/// to flag, not just noise.
void fill_synth_corpus(ShardedCorpus& corpus, std::size_t resident,
                       std::size_t fresh, std::size_t d) {
  const std::vector<std::vector<float>> rows =
      synth_rows(resident, d, /*seed=*/41);
  for (std::size_t i = 0; i < resident; ++i) {
    corpus.add("res#" + std::to_string(i), row_matrix(rows[i]));
  }
  util::Rng rng(97);
  for (std::size_t i = 0; i < fresh; ++i) {
    std::vector<float> row(d);
    if (i % 3 == 0 && resident > 0) {
      row = rows[rng.next_below(resident)];
      for (float& x : row) x += rng.uniform(-0.01F, 0.01F);
    } else {
      for (float& x : row) x = rng.uniform(-1.0F, 1.0F);
    }
    corpus.add("new#" + std::to_string(i), row_matrix(row));
  }
}

// ---- Dispatch resolution --------------------------------------------------

TEST(KernelDispatch, ParseAndNameRoundTrip) {
  for (const KernelBackend b :
       {KernelBackend::kAuto, KernelBackend::kScalar, KernelBackend::kAvx2,
        KernelBackend::kNeon}) {
    EXPECT_EQ(parse_backend(backend_name(b)), b);
  }
  EXPECT_THROW((void)parse_backend("sse9"), util::ContractViolation);
  EXPECT_THROW((void)parse_backend(""), util::ContractViolation);
  EXPECT_THROW((void)parse_backend("AVX2"), util::ContractViolation);
}

TEST(KernelDispatch, DetectionIsConcreteAndSupported) {
  const KernelBackend detected = detect_backend();
  EXPECT_NE(detected, KernelBackend::kAuto);
  EXPECT_TRUE(backend_supported(detected));
  EXPECT_TRUE(backend_supported(KernelBackend::kScalar));
  EXPECT_TRUE(backend_supported(KernelBackend::kAuto));
}

TEST(KernelDispatch, EnvKnobSteersAutoButNotExplicitRequests) {
  {
    EnvGuard env("scalar");
    EXPECT_EQ(resolve_backend(KernelBackend::kAuto), KernelBackend::kScalar);
    // An explicit request wins over the environment.
    EXPECT_EQ(resolve_backend(detect_backend()), detect_backend());
  }
  {
    EnvGuard env(nullptr);
    EXPECT_EQ(resolve_backend(KernelBackend::kAuto), detect_backend());
  }
  {
    EnvGuard env("auto");
    EXPECT_EQ(resolve_backend(KernelBackend::kAuto), detect_backend());
  }
  {
    EnvGuard env("bogus");
    EXPECT_THROW((void)resolve_backend(KernelBackend::kAuto),
                 util::ContractViolation);
  }
}

TEST(KernelDispatch, ForcingAnUnsupportedBackendIsAHardError) {
  for (const KernelBackend b : {KernelBackend::kAvx2, KernelBackend::kNeon}) {
    if (backend_supported(b)) {
      EXPECT_EQ(kernel_ops(b).backend, b);
      continue;
    }
    EXPECT_THROW((void)resolve_backend(b), util::ContractViolation);
    EXPECT_THROW((void)kernel_ops(b), util::ContractViolation);
    // The same strictness through the environment: no silent fallback.
    EnvGuard env(backend_name(b));
    EXPECT_THROW((void)resolve_backend(KernelBackend::kAuto),
                 util::ContractViolation);
  }
}

// ---- Float kernels vs the scalar oracle -----------------------------------

TEST(KernelSweep, ScalarSweepIsACosineCellLoopBitForBit) {
  const KernelOps& ops = kernel_ops(KernelBackend::kScalar);
  for (const std::size_t d : {1UL, 3UL, 5UL, 8UL, 16UL, 31UL}) {
    const auto rows = synth_rows(24, d, /*seed=*/d);
    std::vector<float> flat;
    std::vector<float> norms;
    for (const auto& row : rows) {
      flat.insert(flat.end(), row.begin(), row.end());
      norms.push_back(row_norm(row));
    }
    const std::vector<float>& q = rows[5];
    const float qnorm = norms[5];
    std::vector<float> got(rows.size());
    ops.cosine_sweep(q.data(), qnorm, flat.data(), norms.data(), rows.size(),
                     d, got.data());
    for (std::size_t j = 0; j < rows.size(); ++j) {
      EXPECT_EQ(got[j],
                cosine_cell(q.data(), rows[j].data(), d, qnorm * norms[j]))
          << "dim " << d << " row " << j;
    }
    EXPECT_EQ(ops.row_norm_f32(q.data(), d), row_norm(q));
  }
}

TEST(KernelSweep, SimdBackendsMatchScalarOnEdgeShapes) {
  // Dims straddle the vector widths (8 floats for AVX2, 4 for NEON,
  // 16/32 int8 lanes) with ragged tails on both sides.
  const KernelOps& scalar = kernel_ops(KernelBackend::kScalar);
  for (const KernelBackend b : supported_simd_backends()) {
    const KernelOps& simd = kernel_ops(b);
    EXPECT_EQ(simd.backend, b);
    for (const std::size_t d : {1UL, 2UL, 3UL, 5UL, 8UL, 13UL, 16UL, 31UL,
                                33UL, 64UL}) {
      const auto rows = synth_rows(32, d, /*seed=*/100 + d);
      std::vector<float> flat;
      std::vector<float> norms;
      for (const auto& row : rows) {
        flat.insert(flat.end(), row.begin(), row.end());
        norms.push_back(row_norm(row));
      }
      const std::vector<float>& q = rows[1];
      const float qnorm = norms[1];
      std::vector<float> want(rows.size());
      std::vector<float> got(rows.size());
      scalar.cosine_sweep(q.data(), qnorm, flat.data(), norms.data(),
                          rows.size(), d, want.data());
      simd.cosine_sweep(q.data(), qnorm, flat.data(), norms.data(),
                        rows.size(), d, got.data());
      for (std::size_t j = 0; j < rows.size(); ++j) {
        EXPECT_NEAR(got[j], want[j], 1e-5F)
            << backend_name(b) << " dim " << d << " row " << j;
        EXPECT_GE(got[j], -1.0F);
        EXPECT_LE(got[j], 1.0F);
        // Zero rows accumulate exact zeros on every backend.
        if (j % 16 == 7) {
          EXPECT_EQ(got[j], 0.0F);
        }
      }
      EXPECT_NEAR(simd.dot_f32(q.data(), rows[3].data(), d),
                  scalar.dot_f32(q.data(), rows[3].data(), d),
                  1e-5F * static_cast<float>(d));
      EXPECT_NEAR(simd.row_norm_f32(q.data(), d), row_norm(q), 1e-6F);
    }
  }
}

TEST(KernelSweep, Int8DotIsBitIdenticalAcrossBackends) {
  const KernelOps& scalar = kernel_ops(KernelBackend::kScalar);
  util::Rng rng(7);
  for (const std::size_t d :
       {1UL, 5UL, 15UL, 16UL, 17UL, 32UL, 33UL, 64UL, 100UL}) {
    std::vector<std::int8_t> a(d);
    std::vector<std::int8_t> b(d);
    for (std::size_t k = 0; k < d; ++k) {
      // Full quantized range including the extremes.
      a[k] = static_cast<std::int8_t>(
          static_cast<int>(rng.next_below(255)) - 127);
      b[k] = static_cast<std::int8_t>(
          static_cast<int>(rng.next_below(255)) - 127);
    }
    std::int64_t want_wide = 0;
    for (std::size_t k = 0; k < d; ++k) {
      want_wide += static_cast<std::int64_t>(a[k]) * b[k];
    }
    const std::int32_t want = scalar.dot_i8(a.data(), b.data(), d);
    EXPECT_EQ(static_cast<std::int64_t>(want), want_wide) << "dim " << d;
    for (const KernelBackend backend : supported_simd_backends()) {
      EXPECT_EQ(kernel_ops(backend).dot_i8(a.data(), b.data(), d), want)
          << backend_name(backend) << " dim " << d;
    }
  }
}

EmbeddingStore synth_store(std::size_t n, std::size_t d, std::uint64_t seed) {
  EmbeddingStore store;
  const auto rows = synth_rows(n, d, seed);
  for (std::size_t i = 0; i < n; ++i) {
    store.add("r#" + std::to_string(i), row_matrix(rows[i]));
  }
  return store;
}

TEST(KernelSweep, Int8BlockSweepMatchesPerPairDots) {
  // n = 37 leaves a ragged tail past every 4-row grouping; the dims
  // straddle the 16-lane int8 width (and 8/20 force the AVX2 fused
  // screen path's unfused fallback in the test below).
  const KernelOps& scalar = kernel_ops(KernelBackend::kScalar);
  for (const std::size_t d : {1UL, 5UL, 15UL, 16UL, 17UL, 32UL, 48UL}) {
    const EmbeddingStore store = synth_store(37, d, 1000 + d);
    const std::int8_t* base = store.qrow(0).data();
    const std::int8_t* q = store.qrow(3).data();
    std::vector<std::int32_t> want(store.size());
    for (std::size_t j = 0; j < store.size(); ++j) {
      want[j] = scalar.dot_i8(q, store.qrow(j).data(), d);
    }
    std::vector<std::int32_t> got(store.size());
    scalar.dot_i8_sweep(q, base, store.size(), d, got.data());
    EXPECT_EQ(got, want) << "scalar dim " << d;
    for (const KernelBackend b : supported_simd_backends()) {
      std::fill(got.begin(), got.end(), 0);
      kernel_ops(b).dot_i8_sweep(q, base, store.size(), d, got.data());
      EXPECT_EQ(got, want) << backend_name(b) << " dim " << d;
    }
  }
}

// ---- Bound soundness ------------------------------------------------------

TEST(QuantBounds, EncloseTheExactCosineOnFuzzedRows) {
  // 1000 fuzzed pairs drawn from a store holding every adversarial row
  // shape synth_rows produces: the enclosure lb ≤ exact ≤ ub must never
  // fail — one violation would let the prefilter prune a true match.
  constexpr std::size_t kRows = 512;
  constexpr std::size_t kDim = 16;
  EmbeddingStore store;
  const auto rows = synth_rows(kRows, kDim, /*seed=*/3);
  for (std::size_t i = 0; i < kRows; ++i) {
    store.add("r#" + std::to_string(i), row_matrix(rows[i]));
  }
  const KernelOps& ops = kernel_ops(KernelBackend::kScalar);
  util::Rng rng(17);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t i = rng.next_below(kRows);
    const std::size_t j = rng.next_below(kRows);
    const QuantRowView a = store.quant_view(i);
    const QuantRowView b = store.quant_view(j);
    const std::int32_t dot = ops.dot_i8(a.q, b.q, kDim);
    const CosineBounds bounds = quantized_cosine_bounds(a, b, dot, kDim);
    const float exact = cosine_cell(store.row(i).data(), store.row(j).data(),
                                    kDim, store.norm(i) * store.norm(j));
    ASSERT_LE(bounds.lb, exact) << "pair (" << i << ", " << j << ")";
    ASSERT_GE(bounds.ub, exact) << "pair (" << i << ", " << j << ")";
    EXPECT_LE(bounds.lb, bounds.ub);
    EXPECT_GE(bounds.lb, -1.0F);
    EXPECT_LE(bounds.ub, 1.0F);
  }
}

TEST(QuantBounds, StoreStatsSoaMatchesPerRowGates) {
  // The store-resident SoA must agree to the bit with gates built from
  // quant_view — including after remove() + compact() shuffles rows.
  constexpr std::size_t kDim = 16;
  EmbeddingStore store = synth_store(64, kDim, 5);
  const auto check_all = [&store] {
    const QuantStatsSoa soa = store.quant_stats();
    for (std::size_t i = 0; i < store.size(); ++i) {
      const QuantGate g = make_quant_gate(store.quant_view(i), kDim);
      EXPECT_EQ(soa.scale[i], g.scale) << "row " << i;
      EXPECT_EQ(soa.sq[i], g.sq) << "row " << i;
      EXPECT_EQ(soa.e[i], g.e) << "row " << i;
      EXPECT_EQ(soa.normd[i], static_cast<double>(g.norm)) << "row " << i;
      EXPECT_EQ(soa.normf[i], g.norm) << "row " << i;
    }
  };
  check_all();
  store.remove(3);
  store.remove(40);
  (void)store.compact();
  check_all();
}

TEST(QuantBounds, MarginAndScreenSweepsAreSoundAndSelfConsistent) {
  // The sweep kernels' contract, per backend: (1) the fused
  // quant_screen_sweep equals dot_i8_sweep + quant_margin_sweep on the
  // same backend, lane for lane; (2) dots and den are bit-identical to
  // the scalar per-pair reference on every backend; (3) the hit list is
  // exactly {j : num[j] > prune_max·den[j]}, ascending; (4) soundness:
  // every candidate the exact scalar cell puts above the threshold is a
  // hit (nothing scoring > t is ever pruned), and prune_max = −inf
  // keeps everything.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<KernelBackend> backends{KernelBackend::kScalar};
  for (const KernelBackend b : supported_simd_backends()) {
    backends.push_back(b);
  }
  const KernelOps& scalar = kernel_ops(KernelBackend::kScalar);
  for (const std::size_t d : {8UL, 16UL, 20UL, 32UL}) {
    const EmbeddingStore store = synth_store(37, d, 2000 + d);
    const QuantStatsSoa soa = store.quant_stats();
    const std::size_t n = store.size();
    const std::int8_t* base = store.qrow(0).data();
    for (const std::size_t qi : {0UL, 7UL, 13UL}) {
      const QuantGate ga = make_quant_gate(store.quant_view(qi), d);
      const QuantSweepQuery qc = make_sweep_query(ga);
      std::vector<std::int32_t> ref_dots(n);
      scalar.dot_i8_sweep(ga.q, base, n, d, ref_dots.data());
      for (const double prune_max : {0.5, -kInf}) {
        for (const KernelBackend b : backends) {
          SCOPED_TRACE(std::string(backend_name(b)) + " dim " +
                       std::to_string(d) + " query " + std::to_string(qi) +
                       " prune_max " + std::to_string(prune_max));
          const KernelOps& ops = kernel_ops(b);
          std::vector<std::int32_t> dots(n);
          std::vector<double> num(n);
          std::vector<double> den(n);
          std::vector<std::uint32_t> hits(n);
          const std::size_t n_hits = ops.quant_screen_sweep(
              qc, ga.q, base, d, soa, n, prune_max, dots.data(), num.data(),
              den.data(), hits.data());
          EXPECT_EQ(dots, ref_dots);
          std::vector<std::int32_t> dots2(n);
          std::vector<double> num2(n);
          std::vector<double> den2(n);
          std::vector<std::uint32_t> hits2(n);
          ops.dot_i8_sweep(ga.q, base, n, d, dots2.data());
          const std::size_t n_hits2 =
              ops.quant_margin_sweep(qc, soa, dots2.data(), n, prune_max,
                                     num2.data(), den2.data(), hits2.data());
          EXPECT_EQ(num, num2);
          EXPECT_EQ(den, den2);
          ASSERT_EQ(n_hits, n_hits2);
          for (std::size_t h = 0; h < n_hits; ++h) {
            EXPECT_EQ(hits[h], hits2[h]) << "hit " << h;
          }
          std::size_t expect_hit = 0;
          for (std::size_t j = 0; j < n; ++j) {
            const QuantGate gb = make_quant_gate(store.quant_view(j), d);
            EXPECT_EQ(den[j], quant_gate_denom(ga, gb)) << "row " << j;
            const bool is_hit = num[j] > prune_max * den[j];
            if (is_hit) {
              ASSERT_LT(expect_hit, n_hits);
              EXPECT_EQ(hits[expect_hit], j);
              ++expect_hit;
            }
            const float exact =
                cosine_cell(store.row(qi).data(), store.row(j).data(), d,
                            store.norm(qi) * store.norm(j));
            if (static_cast<double>(exact) > prune_max) {
              EXPECT_TRUE(is_hit) << "row " << j << " exact " << exact;
            }
          }
          EXPECT_EQ(expect_hit, n_hits);
          if (prune_max == -kInf) {
            EXPECT_EQ(n_hits, n);
          }
        }
      }
    }
  }
}

TEST(QuantBounds, SurvivorScanMatchesItsPredicateOnEveryBackend) {
  // num/den are caller inputs here, so unlike the margin sweep the hit
  // list must be bit-identical across backends: exactly
  // {j : num[j] ≥ keep_lb·den[j]}, ascending.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  util::Rng rng(23);
  for (const std::size_t n : {0UL, 1UL, 3UL, 4UL, 37UL, 256UL}) {
    std::vector<double> num(n);
    std::vector<double> den(n);
    for (std::size_t j = 0; j < n; ++j) {
      num[j] = static_cast<double>(rng.uniform(-1.5F, 1.5F));
      den[j] = static_cast<double>(rng.uniform(1e-8F, 2.0F));
    }
    for (const double keep_lb : {0.25, -kInf}) {
      std::vector<std::uint32_t> want;
      for (std::size_t j = 0; j < n; ++j) {
        if (num[j] >= keep_lb * den[j]) {
          want.push_back(static_cast<std::uint32_t>(j));
        }
      }
      std::vector<KernelBackend> backends{KernelBackend::kScalar};
      for (const KernelBackend b : supported_simd_backends()) {
        backends.push_back(b);
      }
      for (const KernelBackend b : backends) {
        std::vector<std::uint32_t> got(n + 1, 0xFFFFFFFFU);
        const std::size_t n_hits = kernel_ops(b).quant_survivor_scan(
            num.data(), den.data(), n, keep_lb, got.data());
        ASSERT_EQ(n_hits, want.size())
            << backend_name(b) << " n=" << n << " keep_lb=" << keep_lb;
        for (std::size_t h = 0; h < n_hits; ++h) {
          EXPECT_EQ(got[h], want[h]) << backend_name(b) << " hit " << h;
        }
      }
    }
  }
}

// ---- Prefilter ≡ exact ----------------------------------------------------

TEST(QuantPrefilter, ScreenBitIdenticalToExactSweepOn10kRows) {
  constexpr std::size_t kResident = 10'000;
  constexpr std::size_t kFresh = 8;
  constexpr std::size_t kDim = 16;
  constexpr float kDelta = 0.5F;
  ScorerOptions exact_options;
  ScorerOptions pre_options;
  pre_options.int8_prefilter = true;
  ShardedCorpus exact(2, exact_options);
  ShardedCorpus pre(2, pre_options);
  fill_synth_corpus(exact, kResident, kFresh, kDim);
  fill_synth_corpus(pre, kResident, kFresh, kDim);

  const std::vector<ScreenRow> want = exact.screen_new_rows(kResident, kDelta);
  const std::vector<ScreenRow> got = pre.screen_new_rows(kResident, kDelta);
  const tensor::Matrix matrix = exact.score_new_rows(kResident);
  ASSERT_EQ(want.size(), kFresh);
  ASSERT_EQ(got.size(), kFresh);
  std::size_t total_rescored = 0;
  std::size_t total_scanned = 0;
  for (std::size_t r = 0; r < kFresh; ++r) {
    // The exhaustive screen rescores everything it scans.
    EXPECT_EQ(want[r].scanned, kResident);
    EXPECT_EQ(want[r].rescored, kResident);
    EXPECT_EQ(got[r].scanned, kResident);
    ASSERT_EQ(got[r].flagged.size(), want[r].flagged.size()) << "row " << r;
    for (std::size_t m = 0; m < want[r].flagged.size(); ++m) {
      EXPECT_EQ(got[r].flagged[m].index, want[r].flagged[m].index);
      EXPECT_EQ(got[r].flagged[m].similarity, want[r].flagged[m].similarity);
      // And both agree with the full matrix sweep, bit for bit.
      EXPECT_EQ(want[r].flagged[m].similarity,
                matrix.at(r, want[r].flagged[m].index));
    }
    ASSERT_TRUE(want[r].best.has_value());
    ASSERT_TRUE(got[r].best.has_value());
    EXPECT_EQ(got[r].best->index, want[r].best->index);
    EXPECT_EQ(got[r].best->similarity, want[r].best->similarity);
    total_rescored += got[r].rescored;
    total_scanned += got[r].scanned;
  }
  // The point of the tier: the overwhelming majority of candidates are
  // pruned by bounds alone (random 16-dim rows sit far below δ = 0.5).
  EXPECT_LT(total_rescored, total_scanned / 4);
}

TEST(QuantPrefilter, TopKBitIdenticalToExhaustiveScan) {
  constexpr std::size_t kRows = 2'000;
  constexpr std::size_t kDim = 16;
  ScorerOptions exact_options;
  ScorerOptions pre_options;
  pre_options.int8_prefilter = true;
  ShardedCorpus exact(4, exact_options);
  ShardedCorpus pre(4, pre_options);
  fill_synth_corpus(exact, kRows, 8, kDim);
  fill_synth_corpus(pre, kRows, 8, kDim);
  for (const std::size_t i : {0UL, 777UL, kRows + 3UL}) {
    for (const std::size_t k : {1UL, 5UL, 32UL}) {
      const std::vector<PairScore> want = exact.top_k(i, k);
      const std::vector<PairScore> got = pre.top_k(i, k);
      ASSERT_EQ(got.size(), want.size()) << "i=" << i << " k=" << k;
      for (std::size_t r = 0; r < want.size(); ++r) {
        EXPECT_EQ(got[r].a, want[r].a);
        EXPECT_EQ(got[r].b, want[r].b);
        EXPECT_EQ(got[r].similarity, want[r].similarity);
      }
    }
  }
}

TEST(QuantPrefilter, FlagBitIdenticalToExhaustiveScan) {
  constexpr std::size_t kRows = 384;
  constexpr std::size_t kDim = 16;
  ScorerOptions exact_options;
  ScorerOptions pre_options;
  pre_options.int8_prefilter = true;
  ShardedCorpus exact(2, exact_options);
  ShardedCorpus pre(2, pre_options);
  fill_synth_corpus(exact, kRows, 12, kDim);
  fill_synth_corpus(pre, kRows, 12, kDim);
  // δ = 0.5 prunes hard; δ = −2 flags every pair (the gate never fires:
  // ub > −2 always) — both ends must agree exactly.
  for (const float delta : {0.5F, 0.9F, -2.0F}) {
    const std::vector<PairScore> want = exact.flag(delta);
    const std::vector<PairScore> got = pre.flag(delta);
    ASSERT_EQ(got.size(), want.size()) << "delta " << delta;
    for (std::size_t r = 0; r < want.size(); ++r) {
      EXPECT_EQ(got[r].a, want[r].a);
      EXPECT_EQ(got[r].b, want[r].b);
      EXPECT_EQ(got[r].similarity, want[r].similarity);
    }
  }
}

TEST(QuantPrefilter, ScreenInvariantAcrossShardAndWorkerCounts) {
  constexpr std::size_t kResident = 300;
  constexpr std::size_t kFresh = 6;
  constexpr std::size_t kDim = 16;
  constexpr float kDelta = 0.5F;
  // Reference: exhaustive, single shard, inline workers.
  ScorerOptions exact_options;
  exact_options.num_threads = 1;
  ShardedCorpus reference(1, exact_options);
  fill_synth_corpus(reference, kResident, kFresh, kDim);
  const std::vector<ScreenRow> want =
      reference.screen_new_rows(kResident, kDelta);
  for (const std::size_t shards : {1UL, 2UL, 4UL}) {
    for (const std::size_t workers : {1UL, 2UL, 8UL}) {
      ScorerOptions options;
      options.int8_prefilter = true;
      options.num_threads = workers;
      ShardedCorpus corpus(shards, options);
      fill_synth_corpus(corpus, kResident, kFresh, kDim);
      const std::vector<ScreenRow> got =
          corpus.screen_new_rows(kResident, kDelta);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t r = 0; r < want.size(); ++r) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " workers=" + std::to_string(workers) +
                     " row=" + std::to_string(r));
        ASSERT_EQ(got[r].flagged.size(), want[r].flagged.size());
        for (std::size_t m = 0; m < want[r].flagged.size(); ++m) {
          EXPECT_EQ(got[r].flagged[m].index, want[r].flagged[m].index);
          EXPECT_EQ(got[r].flagged[m].similarity,
                    want[r].flagged[m].similarity);
        }
        ASSERT_EQ(got[r].best.has_value(), want[r].best.has_value());
        if (want[r].best) {
          EXPECT_EQ(got[r].best->index, want[r].best->index);
          EXPECT_EQ(got[r].best->similarity, want[r].best->similarity);
        }
        EXPECT_EQ(got[r].scanned, want[r].scanned);
      }
    }
  }
}

TEST(QuantPrefilter, AuditVerdictsIdenticalWithPrefilterOn) {
  // End-to-end: real embeddings through the audit layer, prefilter off
  // (the reference) vs on across shard × worker configurations — every
  // report field must match exactly.
  gnn::Hw2Vec model;
  data::RtlCorpusOptions corpus_options;
  corpus_options.instances_per_family = 2;
  corpus_options.families = {"adder", "crc8", "parity", "counter", "pwm"};
  const auto entries =
      make_graph_entries(data::build_rtl_corpus(corpus_options));
  ASSERT_GE(entries.size(), 8u);
  const std::size_t library = entries.size() - 3;

  std::vector<std::vector<audit::ScreenReport>> runs;
  for (const bool prefilter : {false, true}) {
    for (const std::size_t shards : {1UL, 2UL, 4UL}) {
      for (const std::size_t workers : {1UL, 2UL, 8UL}) {
        audit::AuditOptions options;
        options.num_shards = shards;
        options.scorer.num_threads = workers;
        options.scorer.int8_prefilter = prefilter;
        options.scorer.delta = 0.3F;
        audit::AuditService service(model, options);
        for (std::size_t i = 0; i < library; ++i) {
          ASSERT_TRUE(service.add_library(entries[i]).accepted);
        }
        for (std::size_t i = library; i < entries.size(); ++i) {
          ASSERT_TRUE(service.submit(entries[i]));
        }
        runs.push_back(service.screen());
      }
    }
  }
  const std::vector<audit::ScreenReport>& reference = runs.front();
  ASSERT_EQ(reference.size(), entries.size() - library);
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), reference.size()) << "run " << run;
    for (std::size_t r = 0; r < reference.size(); ++r) {
      SCOPED_TRACE("run=" + std::to_string(run) + " report=" +
                   std::to_string(r));
      const audit::ScreenReport& got = runs[run][r];
      const audit::ScreenReport& want = reference[r];
      EXPECT_EQ(got.submission.name, want.submission.name);
      EXPECT_EQ(got.submission.corpus_index, want.submission.corpus_index);
      ASSERT_EQ(got.verdicts.size(), want.verdicts.size());
      for (std::size_t v = 0; v < want.verdicts.size(); ++v) {
        EXPECT_EQ(got.verdicts[v].matched, want.verdicts[v].matched);
        EXPECT_EQ(got.verdicts[v].corpus_index,
                  want.verdicts[v].corpus_index);
        EXPECT_EQ(got.verdicts[v].similarity, want.verdicts[v].similarity);
        EXPECT_EQ(got.verdicts[v].flagged, want.verdicts[v].flagged);
      }
      ASSERT_EQ(got.best.has_value(), want.best.has_value());
      if (want.best) {
        EXPECT_EQ(got.best->matched, want.best->matched);
        EXPECT_EQ(got.best->corpus_index, want.best->corpus_index);
        EXPECT_EQ(got.best->similarity, want.best->similarity);
        EXPECT_EQ(got.best->flagged, want.best->flagged);
      }
    }
  }
}

// ---- Exact mode ignores the backend knob ----------------------------------

TEST(ExactMode, BackendKnobNeverPerturbsExactScoring) {
  // exact_scoring (the default, and what every audit layer keeps) pins
  // the scalar sweep no matter which backend is requested — identical
  // bits with the knob set to the fastest supported backend.
  constexpr std::size_t kRows = 128;
  constexpr std::size_t kDim = 16;
  ScorerOptions scalar_options;
  scalar_options.kernel = KernelBackend::kScalar;
  ScorerOptions fast_options;
  fast_options.kernel = detect_backend();
  ShardedCorpus a(2, scalar_options);
  ShardedCorpus b(2, fast_options);
  fill_synth_corpus(a, kRows, 4, kDim);
  fill_synth_corpus(b, kRows, 4, kDim);
  const tensor::Matrix want = a.score_new_rows(kRows);
  const tensor::Matrix got = b.score_new_rows(kRows);
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t r = 0; r < want.rows(); ++r) {
    for (std::size_t c = 0; c < want.cols(); ++c) {
      ASSERT_EQ(got.at(r, c), want.at(r, c)) << "cell (" << r << "," << c
                                             << ")";
    }
  }
}

TEST(ExactMode, NonExactFloatPathTracksScalarClosely) {
  if (supported_simd_backends().empty()) GTEST_SKIP();
  constexpr std::size_t kRows = 128;
  constexpr std::size_t kDim = 16;
  ScorerOptions scalar_options;
  ScorerOptions simd_options;
  simd_options.exact_scoring = false;
  simd_options.kernel = supported_simd_backends().front();
  ShardedCorpus a(2, scalar_options);
  ShardedCorpus b(2, simd_options);
  fill_synth_corpus(a, kRows, 4, kDim);
  fill_synth_corpus(b, kRows, 4, kDim);
  const tensor::Matrix want = a.score_new_rows(kRows);
  const tensor::Matrix got = b.score_new_rows(kRows);
  for (std::size_t r = 0; r < want.rows(); ++r) {
    for (std::size_t c = 0; c < want.cols(); ++c) {
      ASSERT_NEAR(got.at(r, c), want.at(r, c), 1e-5F);
    }
  }
}

}  // namespace
}  // namespace gnn4ip::core
