// Snapshot + warm-restart tests: the acceptance bar for the durable
// corpus is twofold. (1) Fidelity — a restored EmbeddingStore /
// ShardedCorpus / AuditService scores bit-identically to the
// never-restarted one, cell by cell, across {1, 2, 4} shards × {1, 2,
// 8} workers, with names, tombstones, pins, the name index, and LRU
// recency all surviving the round trip. (2) Rejection — every
// malformed-snapshot case (bad magic, unsupported version, foreign
// byte order, dim drift, truncation, manifest/shard disagreement,
// wrong embedder fingerprint) fails with its *distinct typed*
// core::SnapshotError, never a crash, and leaves the in-memory state
// untouched.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "audit/admission_log.h"
#include "audit/async_auditor.h"
#include "audit/audit_service.h"
#include "core/embedding_store.h"
#include "core/gnn4ip.h"
#include "core/sharded_corpus.h"
#include "core/snapshot_format.h"
#include "data/corpus.h"
#include "gnn/model_io.h"

namespace gnn4ip {
namespace {

std::vector<train::GraphEntry> small_corpus() {
  data::RtlCorpusOptions options;
  options.instances_per_family = 2;
  options.families = {"adder", "crc8", "parity", "counter", "pwm"};
  return make_graph_entries(data::build_rtl_corpus(options));
}

std::vector<tensor::Matrix> embed_all(gnn::Hw2Vec& model,
                                      std::span<const train::GraphEntry> e) {
  std::vector<tensor::Matrix> out;
  out.reserve(e.size());
  for (const train::GraphEntry& entry : e) {
    out.push_back(model.embed_inference(entry.tensors));
  }
  return out;
}

/// Fresh (emptied) per-test snapshot directory under the system temp
/// root — deterministic names, so reruns overwrite instead of leaking.
std::string snapshot_dir(const std::string& leaf) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "gnn4ip_snapshot_test" / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is) << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_rows_equal(const core::EmbeddingStore& got,
                       const core::EmbeddingStore& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.dim(), want.dim());
  EXPECT_EQ(got.live_count(), want.live_count());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got.name(i), want.name(i));
    EXPECT_EQ(got.live(i), want.live(i));
    const std::span<const float> g = got.row(i);
    const std::span<const float> w = want.row(i);
    ASSERT_EQ(g.size(), w.size());
    for (std::size_t k = 0; k < w.size(); ++k) {
      EXPECT_EQ(g[k], w[k]) << "row " << i << " cell " << k;
    }
  }
}

// ---- EmbeddingStore: binary shard format ---------------------------------

core::EmbeddingStore sample_store() {
  core::EmbeddingStore store;
  tensor::Matrix a(1, 4, 0.0F);
  for (std::size_t c = 0; c < 4; ++c) a.at(0, c) = 0.25F * (c + 1);
  tensor::Matrix b(1, 4, -1.5F);
  tensor::Matrix c(1, 4, 3.25F);
  (void)store.add("crc8", a);
  (void)store.add("name with spaces", b);
  (void)store.add("", c);  // empty names are legal and must round-trip
  store.remove(1);         // tombstones are part of the persisted state
  return store;
}

std::string serialized_sample_store() {
  std::ostringstream os(std::ios::binary);
  sample_store().save(os);
  return os.str();
}

TEST(SnapshotStore, RoundTripIsExactIncludingTombstonesAndNames) {
  const core::EmbeddingStore original = sample_store();
  std::ostringstream os(std::ios::binary);
  original.save(os);
  std::istringstream is(os.str(), std::ios::binary);
  const core::EmbeddingStore loaded = core::EmbeddingStore::load(is, 4);
  expect_rows_equal(loaded, original);
}

TEST(SnapshotStore, EmptyStoreRoundTrips) {
  const core::EmbeddingStore empty;
  std::ostringstream os(std::ios::binary);
  empty.save(os);
  std::istringstream is(os.str(), std::ios::binary);
  const core::EmbeddingStore loaded = core::EmbeddingStore::load(is);
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.dim(), 0u);
}

// Fixed header offsets of the v1 shard format (docs/FORMATS.md): magic
// [0, 8), version u32 @8, byte-order mark u32 @12, dim u64 @16, rows
// u64 @24, live u64 @32, float block @40.
TEST(SnapshotStore, LoadRejectsBadMagicTyped) {
  std::string bytes = serialized_sample_store();
  bytes[0] = 'X';
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW((void)core::EmbeddingStore::load(is),
               core::SnapshotMagicError);
}

TEST(SnapshotStore, LoadRejectsUnsupportedVersionTyped) {
  std::string bytes = serialized_sample_store();
  bytes[8] = static_cast<char>(core::kShardFormatVersion + 1);
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW((void)core::EmbeddingStore::load(is),
               core::SnapshotVersionError);
}

TEST(SnapshotStore, LoadRejectsForeignByteOrderTyped) {
  std::string bytes = serialized_sample_store();
  // A byte-swapped mark is exactly what a foreign-endian writer leaves.
  std::swap(bytes[12], bytes[15]);
  std::swap(bytes[13], bytes[14]);
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW((void)core::EmbeddingStore::load(is),
               core::SnapshotByteOrderError);
}

TEST(SnapshotStore, LoadRejectsDimDriftTyped) {
  std::istringstream is(serialized_sample_store(), std::ios::binary);
  EXPECT_THROW((void)core::EmbeddingStore::load(is, /*expected_dim=*/5),
               core::SnapshotDimError);
}

TEST(SnapshotStore, LoadRejectsTruncationAtEveryLayerTyped) {
  const std::string bytes = serialized_sample_store();
  // Cut inside the magic, the header, the float block, the flags/name
  // region, and one byte short of complete: all the same typed error.
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{20}, std::size_t{39}, std::size_t{48},
        bytes.size() - 10, bytes.size() - 1}) {
    ASSERT_LT(keep, bytes.size());
    std::istringstream is(bytes.substr(0, keep), std::ios::binary);
    EXPECT_THROW((void)core::EmbeddingStore::load(is),
                 core::SnapshotTruncatedError)
        << "prefix of " << keep << " bytes";
  }
}

TEST(SnapshotStore, LoadRejectsTrailingBytesTyped) {
  std::istringstream is(serialized_sample_store() + "x", std::ios::binary);
  EXPECT_THROW((void)core::EmbeddingStore::load(is),
               core::SnapshotTruncatedError);
}

// ---- The optional QNT8 quantized-tier section ----------------------------
// Layout for the 3-row dim-4 sample: tag (4) + per-row f32 scales (12) +
// int8 row block (12) = 28 trailing bytes after the name table.

constexpr std::size_t kSampleQuantSectionSize = 4 + 3 * 4 + 3 * 4;

TEST(SnapshotStore, QuantSectionRoundTripsBitForBit) {
  const core::EmbeddingStore original = sample_store();
  const std::string bytes = serialized_sample_store();
  ASSERT_GE(bytes.size(), kSampleQuantSectionSize);
  const std::size_t tag_at = bytes.size() - kSampleQuantSectionSize;
  ASSERT_EQ(bytes.substr(tag_at, 4), "QNT8");
  std::istringstream is(bytes, std::ios::binary);
  const core::EmbeddingStore loaded = core::EmbeddingStore::load(is, 4);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const core::QuantRowView want = original.quant_view(i);
    const core::QuantRowView got = loaded.quant_view(i);
    EXPECT_EQ(got.scale, want.scale) << "row " << i;
    EXPECT_EQ(got.qnorm, want.qnorm) << "row " << i;
    EXPECT_EQ(got.enorm, want.enorm) << "row " << i;
    EXPECT_EQ(got.norm, want.norm) << "row " << i;
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(loaded.qrow(i)[k], original.qrow(i)[k])
          << "row " << i << " cell " << k;
    }
    EXPECT_EQ(loaded.norm(i), original.norm(i)) << "row " << i;
  }
}

TEST(SnapshotStore, LegacyFileWithoutQuantSectionLoadsAndRebuildsTier) {
  // A pre-QNT8 shard file is exactly today's bytes minus the trailing
  // section; the tier is deterministic from the float rows, so loading
  // one must produce the identical quantized state.
  const core::EmbeddingStore original = sample_store();
  const std::string bytes = serialized_sample_store();
  const std::string legacy =
      bytes.substr(0, bytes.size() - kSampleQuantSectionSize);
  std::istringstream is(legacy, std::ios::binary);
  const core::EmbeddingStore loaded = core::EmbeddingStore::load(is, 4);
  expect_rows_equal(loaded, original);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.quant_view(i).scale, original.quant_view(i).scale);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(loaded.qrow(i)[k], original.qrow(i)[k]);
    }
  }
}

TEST(SnapshotStore, LoadRejectsCorruptQuantSectionTyped) {
  const std::string bytes = serialized_sample_store();
  const std::size_t tag_at = bytes.size() - kSampleQuantSectionSize;
  // A flipped byte in the scales, and one in the int8 block: both
  // disagree with the deterministic rebuild from the (intact) float
  // rows — the poisoned-tier signature.
  for (const std::size_t victim : {tag_at + 5, tag_at + 4 + 12 + 2}) {
    std::string corrupt = bytes;
    corrupt[victim] = static_cast<char>(corrupt[victim] ^ '\x7F');
    std::istringstream is(corrupt, std::ios::binary);
    EXPECT_THROW((void)core::EmbeddingStore::load(is),
                 core::SnapshotManifestError)
        << "corrupt byte at " << victim;
  }
}

TEST(SnapshotStore, LoadRejectsForeignTrailingSectionTyped) {
  // Trailing bytes that are not a QNT8 section — a wrong tag, or a tag
  // torn mid-write — are truncation-class damage, not a legacy file.
  const std::string bytes = serialized_sample_store();
  const std::size_t tag_at = bytes.size() - kSampleQuantSectionSize;
  {
    std::string corrupt = bytes;
    corrupt[tag_at] = 'X';
    std::istringstream is(corrupt, std::ios::binary);
    EXPECT_THROW((void)core::EmbeddingStore::load(is),
                 core::SnapshotTruncatedError);
  }
  {
    std::istringstream is(bytes.substr(0, tag_at + 2), std::ios::binary);
    EXPECT_THROW((void)core::EmbeddingStore::load(is),
                 core::SnapshotTruncatedError);
  }
}

TEST(SnapshotStore, LoadRejectsInconsistentHeaderTyped) {
  std::string bytes = serialized_sample_store();
  // Declare live = rows + 1 (header @32): internally inconsistent.
  bytes[32] = 4;
  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW((void)core::EmbeddingStore::load(is),
               core::SnapshotManifestError);
}

// ---- ShardedCorpus: snapshot directory (shards + manifest) ---------------

TEST(SnapshotCorpus, SaveRestoreRoundTripsRowsNamesAndTombstones) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 6u);
  const auto embeddings = embed_all(model, entries);

  core::ShardedCorpus original(3);
  for (std::size_t i = 0; i < 6; ++i) {
    (void)original.add(entries[i].name, embeddings[i]);
  }
  original.remove(2);
  const std::string dir = snapshot_dir("corpus_roundtrip");
  original.save(dir, "fp-roundtrip");
  EXPECT_EQ(core::ShardedCorpus::snapshot_fingerprint(dir), "fp-roundtrip");

  core::ShardedCorpus restored(1);
  restored.restore(dir, "fp-roundtrip");
  // The restored corpus adopts the snapshot's shard count and global
  // index order; rows are byte-equal.
  EXPECT_EQ(restored.num_shards(), 3u);
  ASSERT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.live_count(), original.live_count());
  EXPECT_EQ(restored.dim(), original.dim());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored.name(i), original.name(i));
    EXPECT_EQ(restored.live(i), original.live(i));
    EXPECT_EQ(restored.shard_of(i), original.shard_of(i));
    const std::span<const float> g = restored.row(i);
    const std::span<const float> w = original.row(i);
    ASSERT_EQ(g.size(), w.size());
    for (std::size_t k = 0; k < w.size(); ++k) EXPECT_EQ(g[k], w[k]);
  }
}

TEST(SnapshotCorpus, RestoredScoringBitIdenticalAcrossShardAndWorkerCounts) {
  // The acceptance criterion: post-restore score_new_rows/top_k/flag
  // equal the never-restarted corpus cell by cell, for every shard
  // count × worker count.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 8u);
  const auto embeddings = embed_all(model, entries);
  const std::size_t resident = entries.size() - 3;

  for (const std::size_t shards : {1u, 2u, 4u}) {
    core::ShardedCorpus original(shards);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      (void)original.add(entries[i].name, embeddings[i]);
    }
    original.remove(1);  // exercise tombstone persistence in scoring
    const std::string dir =
        snapshot_dir("corpus_bitident_" + std::to_string(shards));
    original.save(dir, "fp-bitident");

    const tensor::Matrix expected = original.score_new_rows(resident);
    const std::vector<core::PairScore> expected_top = original.top_k(0, 5);
    const std::vector<core::PairScore> expected_flag = original.flag(-0.5F);
    ASSERT_FALSE(expected_top.empty());
    ASSERT_FALSE(expected_flag.empty());

    for (const std::size_t workers : {1u, 2u, 8u}) {
      core::ScorerOptions options;
      options.num_threads = workers;
      core::ShardedCorpus restored(1, options);
      restored.restore(dir, "fp-bitident");

      const tensor::Matrix scores = restored.score_new_rows(resident);
      ASSERT_EQ(scores.rows(), expected.rows());
      ASSERT_EQ(scores.cols(), expected.cols());
      for (std::size_t r = 0; r < scores.rows(); ++r) {
        for (std::size_t c = 0; c < scores.cols(); ++c) {
          EXPECT_EQ(scores.at(r, c), expected.at(r, c))
              << shards << " shards, " << workers << " workers, cell (" << r
              << ", " << c << ")";
        }
      }
      const std::vector<core::PairScore> top = restored.top_k(0, 5);
      ASSERT_EQ(top.size(), expected_top.size());
      for (std::size_t i = 0; i < top.size(); ++i) {
        EXPECT_EQ(top[i].a, expected_top[i].a);
        EXPECT_EQ(top[i].b, expected_top[i].b);
        EXPECT_EQ(top[i].similarity, expected_top[i].similarity);
      }
      const std::vector<core::PairScore> flagged = restored.flag(-0.5F);
      ASSERT_EQ(flagged.size(), expected_flag.size());
      for (std::size_t i = 0; i < flagged.size(); ++i) {
        EXPECT_EQ(flagged[i].a, expected_flag[i].a);
        EXPECT_EQ(flagged[i].b, expected_flag[i].b);
        EXPECT_EQ(flagged[i].similarity, expected_flag[i].similarity);
      }
    }
  }
}

TEST(SnapshotCorpus, RestoreRejectsWrongFingerprintAndLeavesCorpusAlone) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const auto embeddings = embed_all(model, entries);

  core::ShardedCorpus original(2);
  for (std::size_t i = 0; i < 4; ++i) {
    (void)original.add(entries[i].name, embeddings[i]);
  }
  const std::string dir = snapshot_dir("corpus_fingerprint");
  original.save(dir, "fp-writer");

  core::ShardedCorpus victim(2);
  (void)victim.add(entries[4].name, embeddings[4]);
  EXPECT_THROW(victim.restore(dir, "fp-other"),
               core::SnapshotFingerprintError);
  // Strong guarantee: the failed restore changed nothing.
  ASSERT_EQ(victim.size(), 1u);
  EXPECT_EQ(victim.name(0), entries[4].name);
  // An empty expected fingerprint skips the check (caller opted out).
  victim.restore(dir, "");
  EXPECT_EQ(victim.size(), 4u);
}

TEST(SnapshotCorpus, RestoreRejectsTamperedManifestTyped) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const auto embeddings = embed_all(model, entries);
  core::ShardedCorpus original(2);
  for (std::size_t i = 0; i < 4; ++i) {
    (void)original.add(entries[i].name, embeddings[i]);
  }
  const std::string dir = snapshot_dir("corpus_manifest");
  original.save(dir, "fp-manifest");
  const std::string manifest_path =
      (std::filesystem::path(dir) / core::kManifestFileName).string();
  const std::string pristine = slurp(manifest_path);

  const auto expect_restore_error =
      [&](const std::string& mutated, const auto& matcher) {
        spew(manifest_path, mutated);
        core::ShardedCorpus corpus(1);
        matcher(corpus);
        spew(manifest_path, pristine);
      };

  // Wrong magic: not a corpus manifest at all.
  expect_restore_error(
      "not-a-manifest v1\n", [&](core::ShardedCorpus& c) {
        EXPECT_THROW(c.restore(dir, ""), core::SnapshotMagicError);
      });
  // Right magic, future version.
  {
    std::string mutated = pristine;
    mutated.replace(mutated.find(" v1"), 3, " v9");
    expect_restore_error(mutated, [&](core::ShardedCorpus& c) {
      EXPECT_THROW(c.restore(dir, ""), core::SnapshotVersionError);
    });
  }
  // Unknown placement scheme: rows would land in the wrong shards.
  {
    std::string mutated = pristine;
    mutated.replace(mutated.find(core::kPlacementScheme),
                    std::string(core::kPlacementScheme).size(), "crc32-mod");
    expect_restore_error(mutated, [&](core::ShardedCorpus& c) {
      EXPECT_THROW(c.restore(dir, ""), core::SnapshotManifestError);
    });
  }
  // Truncated: the 'end' sentinel is gone.
  expect_restore_error(
      pristine.substr(0, pristine.find("end")),
      [&](core::ShardedCorpus& c) {
        EXPECT_THROW(c.restore(dir, ""), core::SnapshotTruncatedError);
      });

  // Pristine manifest restores fine afterwards.
  core::ShardedCorpus corpus(1);
  corpus.restore(dir, "fp-manifest");
  EXPECT_EQ(corpus.live_count(), 4u);
}

TEST(SnapshotCorpus, RestoreRejectsMissingShardFileTyped) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const auto embeddings = embed_all(model, entries);
  core::ShardedCorpus original(3);
  for (std::size_t i = 0; i < 6; ++i) {
    (void)original.add(entries[i].name, embeddings[i]);
  }
  const std::string dir = snapshot_dir("corpus_missing_shard");
  original.save(dir, "fp-missing");
  std::filesystem::remove(std::filesystem::path(dir) /
                          core::shard_file_name(1));
  core::ShardedCorpus corpus(1);
  EXPECT_THROW(corpus.restore(dir, "fp-missing"),
               core::SnapshotManifestError);
  EXPECT_EQ(corpus.size(), 0u);  // untouched
}

}  // namespace
}  // namespace gnn4ip

// ---- AuditService / AsyncAuditor: warm restart ---------------------------

namespace gnn4ip::audit {
namespace {

using gnn4ip::small_corpus;
using gnn4ip::snapshot_dir;
using gnn4ip::slurp;
using gnn4ip::spew;

void expect_reports_equal(const std::vector<ScreenReport>& got,
                          const std::vector<ScreenReport>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got[r].submission.name, want[r].submission.name);
    EXPECT_EQ(got[r].submission.accepted, want[r].submission.accepted);
    EXPECT_EQ(got[r].submission.corpus_index,
              want[r].submission.corpus_index);
    ASSERT_EQ(got[r].verdicts.size(), want[r].verdicts.size()) << "report "
                                                               << r;
    for (std::size_t v = 0; v < want[r].verdicts.size(); ++v) {
      EXPECT_EQ(got[r].verdicts[v].matched, want[r].verdicts[v].matched);
      EXPECT_EQ(got[r].verdicts[v].corpus_index,
                want[r].verdicts[v].corpus_index);
      EXPECT_EQ(got[r].verdicts[v].similarity,
                want[r].verdicts[v].similarity);
      EXPECT_EQ(got[r].verdicts[v].flagged, want[r].verdicts[v].flagged);
    }
    ASSERT_EQ(got[r].best.has_value(), want[r].best.has_value());
    if (want[r].best) {
      EXPECT_EQ(got[r].best->matched, want[r].best->matched);
      EXPECT_EQ(got[r].best->similarity, want[r].best->similarity);
    }
  }
}

TEST(SnapshotAudit, ModelFingerprintIsStableAndWeightSensitive) {
  gnn::Hw2Vec a;
  gnn::Hw2Vec b;
  EXPECT_EQ(gnn::model_fingerprint(a), gnn::model_fingerprint(b));
  EXPECT_EQ(gnn::model_fingerprint(a).size(), 16u);
  gnn::Hw2VecConfig config;
  config.seed = 99;  // different weights, same architecture
  gnn::Hw2Vec c(config);
  EXPECT_NE(gnn::model_fingerprint(a), gnn::model_fingerprint(c));
}

TEST(SnapshotAudit, WarmRestartScreensBitIdenticalToNeverRestarted) {
  // Warm reference: library + part A + part B in one process. Restarted
  // run: screen part A, save, load into a fresh service, screen part B.
  // Part B's reports must match the warm process cell by cell — the
  // restart is invisible.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 9u);
  const std::size_t library = 3;
  const std::size_t split = 6;

  AuditOptions options;
  options.num_shards = 2;
  options.scorer.delta = -2.0F;  // every resident match is a verdict

  AuditService warm(model, options);
  for (std::size_t i = 0; i < library; ++i) {
    ASSERT_TRUE(warm.add_library(entries[i]).accepted);
  }
  for (std::size_t i = library; i < split; ++i) {
    ASSERT_TRUE(warm.submit(entries[i]));
  }
  (void)warm.screen();
  for (std::size_t i = split; i < entries.size(); ++i) {
    ASSERT_TRUE(warm.submit(entries[i]));
  }
  const std::vector<ScreenReport> warm_part_b = warm.screen();

  AuditService first(model, options);
  for (std::size_t i = 0; i < library; ++i) {
    ASSERT_TRUE(first.add_library(entries[i]).accepted);
  }
  for (std::size_t i = library; i < split; ++i) {
    ASSERT_TRUE(first.submit(entries[i]));
  }
  (void)first.screen();
  const std::string dir = snapshot_dir("audit_warm_restart");
  first.save_corpus(dir);

  AuditService second(model, options);
  second.load_corpus(dir);
  EXPECT_EQ(second.resident(), first.resident());
  for (std::size_t i = split; i < entries.size(); ++i) {
    ASSERT_TRUE(second.submit(entries[i]));
  }
  const std::vector<ScreenReport> cold_part_b = second.screen();

  expect_reports_equal(cold_part_b, warm_part_b);
  // Post-restart top_k equals the warm process's too.
  const std::vector<Verdict> warm_top = warm.top_k(entries[0].name, 5);
  const std::vector<Verdict> cold_top = second.top_k(entries[0].name, 5);
  ASSERT_EQ(cold_top.size(), warm_top.size());
  for (std::size_t i = 0; i < warm_top.size(); ++i) {
    EXPECT_EQ(cold_top[i].matched, warm_top[i].matched);
    EXPECT_EQ(cold_top[i].corpus_index, warm_top[i].corpus_index);
    EXPECT_EQ(cold_top[i].similarity, warm_top[i].similarity);
  }
}

TEST(SnapshotAudit, LoadRejectsSnapshotFromDifferentModel) {
  gnn::Hw2Vec writer_model;
  const auto entries = small_corpus();
  AuditOptions options;
  AuditService writer(writer_model, options);
  ASSERT_TRUE(writer.add_library(entries[0]).accepted);
  const std::string dir = snapshot_dir("audit_wrong_model");
  writer.save_corpus(dir);

  gnn::Hw2VecConfig config;
  config.seed = 99;
  AuditService reader(gnn::Hw2Vec(config), options);
  ASSERT_TRUE(reader.add_library(entries[1]).accepted);
  EXPECT_THROW(reader.load_corpus(dir), core::SnapshotFingerprintError);
  // Strong guarantee: the reader kept its own corpus.
  EXPECT_EQ(reader.resident(), 1u);
  EXPECT_TRUE(reader.contains(entries[1].name));
}

TEST(SnapshotAudit, WarmRestartPreservesPinsNameIndexAndLruRecency) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 8u);

  AuditOptions options;
  options.num_shards = 2;
  options.max_resident = 4;
  options.scorer.delta = -2.0F;

  // Twin A stays warm; twin B restarts from A's snapshot. Both then see
  // the same eviction pressure — identical victims proves the restored
  // LRU recency equals the warm one.
  AuditService warm(model, options);
  ASSERT_TRUE(warm.add_library(entries[0]).accepted);  // pinned
  for (std::size_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(warm.submit(entries[i]));
    (void)warm.screen();
  }
  ASSERT_EQ(warm.resident(), 4u);

  const std::string dir = snapshot_dir("audit_lru");
  warm.save_corpus(dir);
  AuditService restarted(model, options);
  restarted.load_corpus(dir);

  EXPECT_EQ(restarted.resident(), warm.resident());
  EXPECT_TRUE(restarted.pinned(entries[0].name));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(restarted.contains(entries[i].name),
              warm.contains(entries[i].name))
        << entries[i].name;
    EXPECT_EQ(restarted.index_of(entries[i].name),
              warm.index_of(entries[i].name))
        << entries[i].name;
  }

  // Same pressure, same victims — one submission at a time.
  for (std::size_t i = 6; i < 8; ++i) {
    ASSERT_TRUE(warm.submit(entries[i]));
    (void)warm.screen();
    ASSERT_TRUE(restarted.submit(entries[i]));
    (void)restarted.screen();
    for (std::size_t j = 0; j < entries.size(); ++j) {
      EXPECT_EQ(restarted.contains(entries[j].name),
                warm.contains(entries[j].name))
          << "after submission " << i << ": " << entries[j].name;
    }
  }
  // The pinned library row survived both streams.
  EXPECT_TRUE(warm.contains(entries[0].name));
  EXPECT_TRUE(restarted.contains(entries[0].name));
}

TEST(SnapshotAudit, LoadRejectsTamperedServiceStateTyped) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  AuditOptions options;
  AuditService writer(model, options);
  ASSERT_TRUE(writer.add_library(entries[0]).accepted);
  ASSERT_TRUE(writer.add_library(entries[1]).accepted);
  const std::string dir = snapshot_dir("audit_service_tamper");
  writer.save_corpus(dir);
  const std::string service_path =
      (std::filesystem::path(dir) / core::kServiceFileName).string();
  const std::string pristine = slurp(service_path);

  const auto expect_load_error = [&](const std::string& mutated,
                                     const auto& check) {
    spew(service_path, mutated);
    AuditService reader(model, options);
    ASSERT_TRUE(reader.add_library(entries[2]).accepted);
    check(reader);
    // Strong guarantee, every time: the reader kept its own state.
    EXPECT_EQ(reader.resident(), 1u);
    EXPECT_TRUE(reader.contains(entries[2].name));
    spew(service_path, pristine);
  };

  expect_load_error("bogus v1\nend\n", [&](AuditService& r) {
    EXPECT_THROW(r.load_corpus(dir), core::SnapshotMagicError);
  });
  {
    std::string mutated = pristine;
    mutated.replace(mutated.find(" v1"), 3, " v7");
    expect_load_error(mutated, [&](AuditService& r) {
      EXPECT_THROW(r.load_corpus(dir), core::SnapshotVersionError);
    });
  }
  // Truncated before the declared entries.
  expect_load_error(pristine.substr(0, pristine.find("entry")),
                    [&](AuditService& r) {
                      EXPECT_THROW(r.load_corpus(dir),
                                   core::SnapshotTruncatedError);
                    });
  // A pin naming a non-resident design.
  {
    std::string mutated = pristine;
    mutated.replace(mutated.find("pins 2"), 6, "pins 3");
    mutated.insert(mutated.find("end"), "pin ghost-design\n");
    expect_load_error(mutated, [&](AuditService& r) {
      EXPECT_THROW(r.load_corpus(dir), core::SnapshotManifestError);
    });
  }
  // A name-index entry disagreeing with the corpus row's name.
  {
    std::string mutated = pristine;
    const std::size_t at = mutated.find("entry 0 ");
    ASSERT_NE(at, std::string::npos);
    const std::size_t eol = mutated.find('\n', at);
    mutated.replace(at, eol - at, "entry 0 impostor");
    expect_load_error(mutated, [&](AuditService& r) {
      EXPECT_THROW(r.load_corpus(dir), core::SnapshotManifestError);
    });
  }
  // Missing service file entirely.
  std::filesystem::remove(service_path);
  AuditService reader(model, options);
  EXPECT_THROW(reader.load_corpus(dir), core::SnapshotManifestError);
  spew(service_path, pristine);
  reader.load_corpus(dir);
  EXPECT_EQ(reader.resident(), 2u);
}

TEST(SnapshotAudit, AsyncQuiesceThenSaveCapturesEverySubmission) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 7u);

  AuditOptions options;
  options.num_shards = 2;
  options.scorer.delta = -2.0F;
  AsyncOptions async;
  async.num_consumers = 2;
  AsyncAuditor auditor(model, options, std::move(async));
  ASSERT_TRUE(auditor.service().add_library(entries[0]).accepted);

  std::vector<std::future<ScreenReport>> futures;
  for (std::size_t i = 1; i < 7; ++i) {
    futures.push_back(auditor.submit(entries[i]));
  }
  const std::string dir = snapshot_dir("async_save");
  auditor.save_corpus(dir);  // quiesce-then-save

  // Every submission accepted before the save is in the snapshot.
  AuditService restored(model, options);
  restored.load_corpus(dir);
  EXPECT_EQ(restored.resident(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_TRUE(restored.contains(entries[i].name)) << entries[i].name;
  }
  EXPECT_TRUE(restored.pinned(entries[0].name));
  for (std::future<ScreenReport>& f : futures) {
    EXPECT_TRUE(f.get().submission.accepted);
  }
}

/// In-memory AdmissionLog: records every append and where checkpoints
/// land in the record stream.
class RecordingAdmissionLog final : public AdmissionLog {
 public:
  void append(const AdmissionRecord& record) override {
    records.push_back(record);
  }
  void checkpoint(const std::string& snapshot_dir) override {
    checkpoints.emplace_back(snapshot_dir, records.size());
  }
  std::vector<AdmissionRecord> records;
  std::vector<std::pair<std::string, std::size_t>> checkpoints;
};

TEST(SnapshotAudit, AdmissionLogSeesTicketOrderedAppendsAndCheckpoints) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 5u);

  AuditOptions options;
  options.scorer.delta = -2.0F;
  AuditService service(model, options);
  auto log = std::make_shared<RecordingAdmissionLog>();
  service.set_admission_log(log);

  ASSERT_TRUE(service.add_library(entries[0]).accepted);
  ASSERT_TRUE(service.add_library(entries[1]).accepted);
  for (std::size_t i = 2; i < 5; ++i) ASSERT_TRUE(service.submit(entries[i]));
  (void)service.screen();
  // Re-admitting a resident name records the replacement.
  ASSERT_TRUE(service.add_library(entries[1]).accepted);

  const std::string dir = snapshot_dir("admission_log");
  service.save_corpus(dir);

  ASSERT_EQ(log->records.size(), 6u);
  EXPECT_TRUE(log->records[0].pinned);
  EXPECT_TRUE(log->records[1].pinned);
  EXPECT_FALSE(log->records[2].pinned);
  EXPECT_FALSE(log->records[0].replaced_existing);
  EXPECT_TRUE(log->records.back().replaced_existing);
  EXPECT_EQ(log->records.back().name, entries[1].name);
  for (std::size_t i = 1; i < log->records.size(); ++i) {
    EXPECT_LT(log->records[i - 1].ticket, log->records[i].ticket)
        << "appends must arrive in strictly increasing ticket order";
  }
  // The checkpoint marks exactly how much of the log the snapshot holds.
  ASSERT_EQ(log->checkpoints.size(), 1u);
  EXPECT_EQ(log->checkpoints[0].first, dir);
  EXPECT_EQ(log->checkpoints[0].second, 6u);
}

}  // namespace
}  // namespace gnn4ip::audit
