// PairwiseScorer tests: thread-count invariance, parity with the
// per-pair embed-and-cosine path, and the blocked kernel's geometry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/gnn4ip.h"
#include "core/pairwise_scorer.h"
#include "data/corpus.h"
#include "util/contract.h"

namespace gnn4ip::core {
namespace {

/// The pre-existing per-pair scoring path (PiracyDetector::similarity):
/// embed both members, clamped cosine.
float per_pair_cosine(gnn::Hw2Vec& model, const train::GraphEntry& a,
                      const train::GraphEntry& b) {
  const tensor::Matrix ha = model.embed_inference(a.tensors);
  const tensor::Matrix hb = model.embed_inference(b.tensors);
  const float denom = std::max(
      ha.frobenius_norm() * hb.frobenius_norm(), 1e-8F);
  return std::clamp(tensor::dot(ha, hb) / denom, -1.0F, 1.0F);
}

std::vector<train::GraphEntry> small_corpus() {
  data::RtlCorpusOptions options;
  options.instances_per_family = 2;
  options.families = {"adder", "crc8", "parity16", "counter8"};
  return make_graph_entries(data::build_rtl_corpus(options));
}

TEST(EmbeddingStore, AddNameRowAndDimAccounting) {
  EmbeddingStore store;
  EXPECT_TRUE(store.empty());
  const tensor::Matrix a = tensor::Matrix::from_rows({{1, 2, 3}});
  const tensor::Matrix b = tensor::Matrix::from_rows({{4, 5, 6}});
  EXPECT_EQ(store.add("a", a), 0u);
  EXPECT_EQ(store.add("b", b), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dim(), 3u);
  EXPECT_EQ(store.name(0), "a");
  EXPECT_EQ(store.name(1), "b");
  EXPECT_EQ(store.row(1)[0], 4.0F);
  EXPECT_EQ(store.rows().size(), 6u);
  // Dim is fixed by the first add.
  const tensor::Matrix wide = tensor::Matrix::from_rows({{1, 2, 3, 4}});
  EXPECT_THROW((void)store.add("wide", wide), util::ContractViolation);
}

TEST(EmbeddingStore, RemoveCompactRemapsAndPreservesSurvivors) {
  EmbeddingStore store;
  (void)store.add("a", tensor::Matrix::from_rows({{1, 0}}));
  (void)store.add("b", tensor::Matrix::from_rows({{2, 0}}));
  (void)store.add("c", tensor::Matrix::from_rows({{3, 0}}));
  store.remove(1);
  EXPECT_FALSE(store.live(1));
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_THROW(store.remove(1), util::ContractViolation);  // already gone

  const std::vector<std::size_t> mapping = store.compact();
  ASSERT_EQ(mapping.size(), 3u);
  EXPECT_EQ(mapping[0], 0u);
  EXPECT_EQ(mapping[1], EmbeddingStore::kNoIndex);
  EXPECT_EQ(mapping[2], 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.name(1), "c");
  EXPECT_EQ(store.row(1)[0], 3.0F);
  // Idempotent when nothing is tombstoned: identity mapping.
  const std::vector<std::size_t> identity = store.compact();
  EXPECT_EQ(identity, (std::vector<std::size_t>{0, 1}));
}

TEST(CosinePair, MatchesCosineRowsCellBitForBit) {
  // The fused pair kernel and the precomputed-norm matrix kernel must
  // agree exactly — the cross-layer determinism contract.
  const tensor::Matrix m =
      tensor::Matrix::from_rows({{0.3F, -1.7F, 2.2F}, {5.0F, 0.01F, -3.3F}});
  const tensor::Matrix s = cosine_rows(m, m);
  EXPECT_EQ(cosine_pair(m.row(0), m.row(1)), s.at(0, 1));
  EXPECT_EQ(cosine_pair(m.row(0), m.row(0)), s.at(0, 0));
  EXPECT_THROW((void)cosine_pair(m.row(0), m.row(0).subspan(1)),
               util::ContractViolation);
}

TEST(CosineRows, MatchesHandComputedValues) {
  const tensor::Matrix a = tensor::Matrix::from_rows({{1, 0}, {1, 1}});
  const tensor::Matrix b =
      tensor::Matrix::from_rows({{0, 2}, {3, 0}, {-1, 0}});
  const tensor::Matrix s = cosine_rows(a, b);
  ASSERT_EQ(s.rows(), 2u);
  ASSERT_EQ(s.cols(), 3u);
  EXPECT_NEAR(s.at(0, 0), 0.0F, 1e-6F);
  EXPECT_NEAR(s.at(0, 1), 1.0F, 1e-6F);
  EXPECT_NEAR(s.at(0, 2), -1.0F, 1e-6F);
  const float inv_sqrt2 = 1.0F / std::sqrt(2.0F);
  EXPECT_NEAR(s.at(1, 0), inv_sqrt2, 1e-6F);
  EXPECT_NEAR(s.at(1, 1), inv_sqrt2, 1e-6F);
  EXPECT_NEAR(s.at(1, 2), -inv_sqrt2, 1e-6F);
}

TEST(CosineRows, ZeroRowScoresZero) {
  const tensor::Matrix a = tensor::Matrix::from_rows({{0, 0}, {1, 2}});
  const tensor::Matrix s = cosine_rows(a, a);
  EXPECT_FLOAT_EQ(s.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(s.at(0, 1), 0.0F);
  EXPECT_NEAR(s.at(1, 1), 1.0F, 1e-6F);
}

TEST(CosineRows, DimensionMismatchThrows) {
  const tensor::Matrix a(2, 3);
  const tensor::Matrix b(2, 4);
  EXPECT_THROW((void)cosine_rows(a, b), util::ContractViolation);
}

TEST(PairwiseScorer, ScoresIdenticalAcross1And2And8Threads) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  std::vector<tensor::Matrix> per_thread_scores;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ScorerOptions options;
    options.num_threads = threads;
    options.block_rows = 2;  // several tiles even on this small corpus
    const PairwiseScorer scorer =
        PairwiseScorer::from_entries(model, entries, options);
    per_thread_scores.push_back(scorer.score_matrix());
  }
  ASSERT_EQ(per_thread_scores.size(), 3u);
  // Every cell is computed independently from the cached rows, so the
  // result must be bit-identical, not just close.
  EXPECT_EQ(tensor::max_abs_diff(per_thread_scores[0], per_thread_scores[1]),
            0.0F);
  EXPECT_EQ(tensor::max_abs_diff(per_thread_scores[0], per_thread_scores[2]),
            0.0F);
}

TEST(PairwiseScorer, EmbeddingsIdenticalAcross1And2And8Workers) {
  // from_entries fans the embedding phase out over the worker pool; the
  // cached N×D matrix must be bit-identical for any worker count.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  std::vector<tensor::Matrix> per_count;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ScorerOptions options;
    options.num_threads = threads;
    per_count.push_back(
        PairwiseScorer::from_entries(model, entries, options)
            .embedding_matrix());
  }
  ASSERT_EQ(per_count.size(), 3u);
  EXPECT_EQ(tensor::max_abs_diff(per_count[0], per_count[1]), 0.0F);
  EXPECT_EQ(tensor::max_abs_diff(per_count[0], per_count[2]), 0.0F);
}

TEST(PairwiseScorer, MatchesPerPairPathWithin1e5) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const PairwiseScorer scorer = PairwiseScorer::from_entries(model, entries);
  const tensor::Matrix scores = scorer.score_matrix();
  ASSERT_EQ(scores.rows(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const float reference = per_pair_cosine(model, entries[i], entries[j]);
      EXPECT_NEAR(scores.at(i, j), reference, 1e-5F)
          << "pair (" << entries[i].name << ", " << entries[j].name << ")";
      EXPECT_NEAR(scorer.score(i, j), reference, 1e-5F);
    }
  }
}

TEST(PairwiseScorer, ScoreAllPairsMatchesMatrixUpperTriangle) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const PairwiseScorer scorer = PairwiseScorer::from_entries(model, entries);
  const tensor::Matrix scores = scorer.score_matrix();
  const std::vector<PairScore> pairs = scorer.score_all_pairs();
  const std::size_t n = entries.size();
  ASSERT_EQ(pairs.size(), n * (n - 1) / 2);
  for (const PairScore& p : pairs) {
    EXPECT_LT(p.a, p.b);
    EXPECT_FLOAT_EQ(p.similarity, scores.at(p.a, p.b));
  }
}

TEST(PairwiseScorer, ScoreAgainstMatchesJointMatrix) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 4u);
  PairwiseScorer left;
  PairwiseScorer right;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    auto& side = (i % 2 == 0) ? left : right;
    side.add(entries[i].name, model.embed_inference(entries[i].tensors));
  }
  const tensor::Matrix cross = left.score_against(right);
  ASSERT_EQ(cross.rows(), left.size());
  ASSERT_EQ(cross.cols(), right.size());
  for (std::size_t i = 0; i < left.size(); ++i) {
    for (std::size_t j = 0; j < right.size(); ++j) {
      EXPECT_NEAR(cross.at(i, j),
                  per_pair_cosine(model, entries[2 * i], entries[2 * j + 1]),
                  1e-5F);
    }
  }
}

TEST(PairwiseScorer, ScoreAgainstSpanPathMatchesMatrixCopyBitForBit) {
  // score_against reads both caches through spans — no N×D staging copy.
  // The removed copy must be purely an allocation saving: the result has
  // to carry the exact bits of the Matrix-copy overload on the same
  // rows, and empty sides keep their shaped-zero contract.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 4u);
  PairwiseScorer left;
  PairwiseScorer right;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    auto& side = (i % 2 == 0) ? left : right;
    side.add(entries[i].name, model.embed_inference(entries[i].tensors));
  }
  const tensor::Matrix via_span = left.score_against(right);
  const tensor::Matrix via_copy = cosine_rows(
      left.embedding_matrix(), right.embedding_matrix(), left.options());
  ASSERT_EQ(via_span.rows(), via_copy.rows());
  ASSERT_EQ(via_span.cols(), via_copy.cols());
  for (std::size_t i = 0; i < via_copy.rows(); ++i) {
    for (std::size_t j = 0; j < via_copy.cols(); ++j) {
      EXPECT_EQ(via_span.at(i, j), via_copy.at(i, j))
          << "cell (" << i << "," << j << ")";
    }
  }
  const PairwiseScorer empty;
  const tensor::Matrix left_empty = empty.score_against(right);
  EXPECT_EQ(left_empty.rows(), 0u);
  EXPECT_EQ(left_empty.cols(), right.size());
  const tensor::Matrix right_empty = left.score_against(empty);
  EXPECT_EQ(right_empty.rows(), left.size());
  EXPECT_EQ(right_empty.cols(), 0u);
}

TEST(EmbeddingStore, CachedNormsMatchKernelRecomputationBitForBit) {
  // The store caches fl(row_norm) at add time and keeps it through
  // compact(); every scoring layer divides by these cached values, so
  // they must be indistinguishable from recomputation.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  EmbeddingStore store;
  for (const auto& entry : entries) {
    store.add(entry.name, model.embed_inference(entry.tensors));
  }
  ASSERT_EQ(store.norms().size(), store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.norm(i), row_norm(store.row(i))) << "row " << i;
  }
  store.remove(1);
  (void)store.compact();
  for (std::size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.norm(i), row_norm(store.row(i))) << "row " << i;
  }
}

TEST(PairwiseScorer, FlagReturnsSortedPairsAboveDelta) {
  PairwiseScorer scorer;
  const tensor::Matrix e1 = tensor::Matrix::from_rows({{1, 0}});
  const tensor::Matrix e2 = tensor::Matrix::from_rows({{1, 0.1F}});
  const tensor::Matrix e3 = tensor::Matrix::from_rows({{0, 1}});
  scorer.add("a", e1);
  scorer.add("a_copy", e2);
  scorer.add("other", e3);
  const std::vector<PairScore> flagged = scorer.flag(0.5F);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].a, 0u);
  EXPECT_EQ(flagged[0].b, 1u);
  EXPECT_GT(flagged[0].similarity, 0.99F);
  EXPECT_EQ(scorer.name(flagged[0].b), "a_copy");
}

TEST(PairwiseScorer, ScoreNewRowsMatchesFullMatrixRows) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 4u);
  const PairwiseScorer scorer = PairwiseScorer::from_entries(model, entries);
  const std::size_t first_new = scorer.size() - 3;
  const tensor::Matrix fresh = scorer.score_new_rows(first_new);
  const tensor::Matrix full = scorer.score_matrix();
  ASSERT_EQ(fresh.rows(), 3u);
  ASSERT_EQ(fresh.cols(), scorer.size());
  for (std::size_t r = 0; r < fresh.rows(); ++r) {
    for (std::size_t j = 0; j < fresh.cols(); ++j) {
      EXPECT_EQ(fresh.at(r, j), full.at(first_new + r, j));
    }
  }
  // Nothing new: a 0×N result, not an error.
  EXPECT_EQ(scorer.score_new_rows(scorer.size()).rows(), 0u);
  EXPECT_THROW((void)scorer.score_new_rows(scorer.size() + 1),
               util::ContractViolation);
}

TEST(PairwiseScorer, TopKReturnsNearestNeighboursSorted) {
  PairwiseScorer scorer;
  scorer.add("east", tensor::Matrix::from_rows({{1, 0}}));
  scorer.add("near_east", tensor::Matrix::from_rows({{1, 0.1F}}));
  scorer.add("north", tensor::Matrix::from_rows({{0, 1}}));
  scorer.add("west", tensor::Matrix::from_rows({{-1, 0}}));
  const std::vector<PairScore> nearest = scorer.top_k(0, 2);
  ASSERT_EQ(nearest.size(), 2u);
  EXPECT_EQ(nearest[0].a, 0u);
  EXPECT_EQ(nearest[0].b, 1u);  // near_east
  EXPECT_EQ(nearest[1].b, 2u);  // north (cos 0) beats west (cos −1)
  EXPECT_GE(nearest[0].similarity, nearest[1].similarity);
  EXPECT_FLOAT_EQ(nearest[0].similarity, scorer.score(0, 1));
  // k larger than the corpus: every other row, still sorted.
  EXPECT_EQ(scorer.top_k(0, 99).size(), 3u);
  EXPECT_THROW((void)scorer.top_k(scorer.size(), 1),
               util::ContractViolation);
}

TEST(PairwiseScorer, TopKAgreesWithScoreAllPairs) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const PairwiseScorer scorer = PairwiseScorer::from_entries(model, entries);
  const std::size_t i = 1;
  const std::vector<PairScore> nearest = scorer.top_k(i, scorer.size() - 1);
  ASSERT_EQ(nearest.size(), scorer.size() - 1);
  for (const PairScore& p : nearest) {
    EXPECT_EQ(p.a, i);
    EXPECT_FLOAT_EQ(p.similarity, scorer.score(i, p.b));
  }
  for (std::size_t r = 1; r < nearest.size(); ++r) {
    EXPECT_GE(nearest[r - 1].similarity, nearest[r].similarity);
  }
}

TEST(PairwiseScorer, ReusedTapeEmbeddingsMatchFreshTapePath) {
  // from_entries reuses one tape per worker via Tape::reset(); the cached
  // rows must stay bit-identical to per-graph fresh-tape embeddings.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const PairwiseScorer scorer = PairwiseScorer::from_entries(model, entries);
  const tensor::Matrix cached = scorer.embedding_matrix();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const tensor::Matrix fresh = model.embed_inference(entries[i].tensors);
    const std::span<const float> row = cached.row(i);
    ASSERT_EQ(row.size(), fresh.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(row[c], fresh.data()[c]);
    }
  }
}

TEST(PairwiseScorer, RowAccessorsAreZeroCopyViewsOfTheCache) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const PairwiseScorer scorer = PairwiseScorer::from_entries(model, entries);
  const tensor::Matrix copy = scorer.embedding_matrix();
  const std::span<const float> flat = scorer.rows();
  ASSERT_EQ(flat.size(), scorer.size() * scorer.dim());
  for (std::size_t i = 0; i < scorer.size(); ++i) {
    const std::span<const float> row = scorer.row(i);
    ASSERT_EQ(row.size(), scorer.dim());
    // row(i) and rows() alias the same resident buffer.
    EXPECT_EQ(row.data(), flat.data() + i * scorer.dim());
    for (std::size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(row[c], copy.at(i, c));
    }
  }
  EXPECT_THROW((void)scorer.row(scorer.size()), util::ContractViolation);
}

TEST(PairwiseScorer, RemoveTombstonesAndCompactRemaps) {
  PairwiseScorer scorer;
  scorer.add("east", tensor::Matrix::from_rows({{1, 0}}));
  scorer.add("near_east", tensor::Matrix::from_rows({{1, 0.1F}}));
  scorer.add("north", tensor::Matrix::from_rows({{0, 1}}));
  scorer.add("west", tensor::Matrix::from_rows({{-1, 0}}));
  ASSERT_EQ(scorer.live_count(), 4u);

  scorer.remove(1);  // drop near_east
  EXPECT_FALSE(scorer.live(1));
  EXPECT_TRUE(scorer.live(0));
  EXPECT_EQ(scorer.live_count(), 3u);
  EXPECT_EQ(scorer.size(), 4u);  // index space unchanged until compact
  EXPECT_THROW(scorer.remove(1), util::ContractViolation);

  // Removed rows are no longer neighbours or flaggable pairs.
  const std::vector<PairScore> nearest = scorer.top_k(0, 99);
  ASSERT_EQ(nearest.size(), 2u);
  EXPECT_EQ(nearest[0].b, 2u);  // north, not the dead near_east
  for (const PairScore& p : scorer.score_all_pairs()) {
    EXPECT_NE(p.a, 1u);
    EXPECT_NE(p.b, 1u);
  }

  const std::vector<std::size_t> mapping = scorer.compact();
  ASSERT_EQ(mapping.size(), 4u);
  EXPECT_EQ(mapping[0], 0u);
  EXPECT_EQ(mapping[1], PairwiseScorer::kNoIndex);
  EXPECT_EQ(mapping[2], 1u);
  EXPECT_EQ(mapping[3], 2u);
  ASSERT_EQ(scorer.size(), 3u);
  EXPECT_EQ(scorer.live_count(), 3u);
  EXPECT_EQ(scorer.name(0), "east");
  EXPECT_EQ(scorer.name(1), "north");
  EXPECT_EQ(scorer.name(2), "west");

  // top_k after remove/compact: indices agree with name(i).
  const std::vector<PairScore> after = scorer.top_k(0, 99);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(scorer.name(after[0].b), "north");
  EXPECT_EQ(scorer.name(after[1].b), "west");

  // Compacting with no tombstones is the identity.
  const std::vector<std::size_t> identity = scorer.compact();
  for (std::size_t i = 0; i < identity.size(); ++i) {
    EXPECT_EQ(identity[i], i);
  }
}

TEST(PairwiseScorer, FlagWithoutArgumentUsesOptionsDelta) {
  ScorerOptions options;
  options.delta = 0.9F;
  PairwiseScorer scorer(options);
  scorer.add("a", tensor::Matrix::from_rows({{1, 0}}));
  scorer.add("a_copy", tensor::Matrix::from_rows({{1, 0.1F}}));
  scorer.add("other", tensor::Matrix::from_rows({{0.7F, 0.7F}}));
  // At δ = 0.9 only the near-copy flags; the explicit-δ overload agrees.
  const std::vector<PairScore> implicit = scorer.flag();
  const std::vector<PairScore> explicit_delta = scorer.flag(0.9F);
  ASSERT_EQ(implicit.size(), 1u);
  ASSERT_EQ(explicit_delta.size(), implicit.size());
  EXPECT_EQ(implicit[0].b, explicit_delta[0].b);
  EXPECT_GT(scorer.flag(0.5F).size(), implicit.size());
}

TEST(CosineRows, SpanOverloadMatchesMatrixOverload) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const PairwiseScorer scorer = PairwiseScorer::from_entries(model, entries);
  const tensor::Matrix emb = scorer.embedding_matrix();
  const tensor::Matrix via_matrix = cosine_rows(emb, emb);
  const tensor::Matrix via_span = cosine_rows(
      scorer.rows(), scorer.size(), scorer.rows(), scorer.size(),
      scorer.dim());
  EXPECT_EQ(tensor::max_abs_diff(via_matrix, via_span), 0.0F);
}

TEST(PairwiseScorer, RejectsMismatchedEmbeddingDims) {
  PairwiseScorer scorer;
  scorer.add("a", tensor::Matrix(1, 4, 1.0F));
  EXPECT_THROW(scorer.add("b", tensor::Matrix(1, 5, 1.0F)),
               util::ContractViolation);
  EXPECT_THROW(scorer.add("c", tensor::Matrix()), util::ContractViolation);
}

TEST(PairwiseScorer, BlockSizeDoesNotChangeScores) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ScorerOptions tiny;
  tiny.block_rows = 1;
  ScorerOptions big;
  big.block_rows = 1024;
  const auto s1 =
      PairwiseScorer::from_entries(model, entries, tiny).score_matrix();
  const auto s2 =
      PairwiseScorer::from_entries(model, entries, big).score_matrix();
  EXPECT_EQ(tensor::max_abs_diff(s1, s2), 0.0F);
}

}  // namespace
}  // namespace gnn4ip::core
