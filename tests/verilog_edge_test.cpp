// Edge-case and robustness tests for the Verilog frontend beyond the
// happy paths of verilog_test.cpp: operator precedence, tricky lexical
// forms, malformed-input diagnostics, and elaboration corner cases.
#include <gtest/gtest.h>

#include "dfg/pipeline.h"
#include "verilog/elaborate.h"
#include "verilog/parser.h"

namespace gnn4ip::verilog {
namespace {

ExprPtr parse_expr(const std::string& text) {
  const Design d =
      parse("module t (output [31:0] y);\n  assign y = " + text +
            ";\nendmodule\n");
  return d.modules[0].assigns[0].rhs->clone();
}

// --- precedence --------------------------------------------------------------

TEST(Precedence, MulBindsTighterThanAdd) {
  // a + b * c  =>  (a + (b * c))
  const ExprPtr e = parse_expr("a + b * c");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->op_binary, BinaryOp::kAdd);
  EXPECT_EQ(e->operands[1]->op_binary, BinaryOp::kMul);
}

TEST(Precedence, ShiftBelowAdd) {
  // a << b + c  =>  a << (b + c)
  const ExprPtr e = parse_expr("a << b + c");
  EXPECT_EQ(e->op_binary, BinaryOp::kShl);
  EXPECT_EQ(e->operands[1]->op_binary, BinaryOp::kAdd);
}

TEST(Precedence, BitwiseChain) {
  // a | b ^ c & d  =>  a | (b ^ (c & d))
  const ExprPtr e = parse_expr("a | b ^ c & d");
  EXPECT_EQ(e->op_binary, BinaryOp::kBitOr);
  EXPECT_EQ(e->operands[1]->op_binary, BinaryOp::kBitXor);
  EXPECT_EQ(e->operands[1]->operands[1]->op_binary, BinaryOp::kBitAnd);
}

TEST(Precedence, LogicalVsBitwise) {
  // a && b | c  =>  a && (b | c)
  const ExprPtr e = parse_expr("a && b | c");
  EXPECT_EQ(e->op_binary, BinaryOp::kLogAnd);
  EXPECT_EQ(e->operands[1]->op_binary, BinaryOp::kBitOr);
}

TEST(Precedence, ComparisonChainsIntoEquality) {
  // a < b == c  =>  (a < b) == c
  const ExprPtr e = parse_expr("a < b == c");
  EXPECT_EQ(e->op_binary, BinaryOp::kEq);
  EXPECT_EQ(e->operands[0]->op_binary, BinaryOp::kLt);
}

TEST(Precedence, TernaryLowest) {
  // a | b ? c : d  =>  (a | b) ? c : d
  const ExprPtr e = parse_expr("a | b ? c : d");
  ASSERT_EQ(e->kind, ExprKind::kTernary);
  EXPECT_EQ(e->operands[0]->op_binary, BinaryOp::kBitOr);
}

TEST(Precedence, NestedTernaryRightAssociative) {
  const ExprPtr e = parse_expr("a ? b : c ? d : f");
  ASSERT_EQ(e->kind, ExprKind::kTernary);
  EXPECT_EQ(e->operands[2]->kind, ExprKind::kTernary);
}

TEST(Precedence, UnaryBindsTightest) {
  // ~a & b  =>  (~a) & b
  const ExprPtr e = parse_expr("~a & b");
  EXPECT_EQ(e->op_binary, BinaryOp::kBitAnd);
  EXPECT_EQ(e->operands[0]->kind, ExprKind::kUnary);
}

TEST(Precedence, ReductionInsideComparison) {
  const ExprPtr e = parse_expr("^a == 1'b1");
  EXPECT_EQ(e->op_binary, BinaryOp::kEq);
  EXPECT_EQ(e->operands[0]->kind, ExprKind::kUnary);
  EXPECT_EQ(e->operands[0]->op_unary, UnaryOp::kRedXor);
}

TEST(Precedence, PowerAboveMul) {
  // a * b ** c  =>  a * (b ** c)
  const ExprPtr e = parse_expr("a * b ** c");
  EXPECT_EQ(e->op_binary, BinaryOp::kMul);
  EXPECT_EQ(e->operands[1]->op_binary, BinaryOp::kPow);
}

// --- lexical edge cases ---------------------------------------------------------

TEST(LexEdge, IndexedPartSelect) {
  const Design d = parse(
      "module m (input [15:0] a, input [3:0] i, output [3:0] y);\n"
      "  assign y = a[i +: 4];\n"
      "endmodule\n");
  EXPECT_EQ(d.modules[0].assigns[0].rhs->kind, ExprKind::kPartSelect);
}

TEST(LexEdge, EscapedIdentifier) {
  const Design d = parse(
      "module m (input \\weird$name , output y);\n"
      "  assign y = \\weird$name ;\n"
      "endmodule\n");
  EXPECT_EQ(d.modules[0].port_order[0], "weird$name");
}

TEST(LexEdge, UnderscoreNumbers) {
  const Design d = parse(
      "module m (output [15:0] y);\n"
      "  assign y = 16'b1010_1010_1010_1010;\n"
      "endmodule\n");
  EXPECT_EQ(d.modules[0].assigns[0].rhs->text, "16'b1010_1010_1010_1010");
}

TEST(LexEdge, XZLiterals) {
  const Design d = parse(
      "module m (output [3:0] y);\n  assign y = 4'bxz01;\nendmodule\n");
  EXPECT_FALSE(fold_constant(*d.modules[0].assigns[0].rhs).has_value());
}

TEST(LexEdge, SignedLiteral) {
  const Design d = parse(
      "module m (output [7:0] y);\n  assign y = 8'sd12;\nendmodule\n");
  EXPECT_EQ(fold_constant(*d.modules[0].assigns[0].rhs).value_or(-1), 12);
}

TEST(LexEdge, MultipleModulesOneBuffer) {
  const Design d = parse(
      "module a (input x, output y);\n  assign y = x;\nendmodule\n"
      "module b (input x, output y);\n  assign y = ~x;\nendmodule\n"
      "module c (input x, output y);\n  assign y = x;\nendmodule\n");
  EXPECT_EQ(d.modules.size(), 3u);
}

// --- diagnostics ---------------------------------------------------------------

struct BadSource {
  const char* name;
  const char* source;
};

class DiagnosticsTest : public ::testing::TestWithParam<BadSource> {};

TEST_P(DiagnosticsTest, RaisesParseError) {
  EXPECT_THROW(parse(GetParam().source), ParseError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, DiagnosticsTest,
    ::testing::Values(
        BadSource{"missing_endmodule", "module m (input a);\n"},
        BadSource{"missing_semicolon",
                  "module m (input a, output y)\n  assign y = a;\nendmodule\n"},
        BadSource{"bad_expression",
                  "module m (output y);\n  assign y = +;\nendmodule\n"},
        BadSource{"unterminated_concat",
                  "module m (input a, output y);\n  assign y = {a, ;\n"
                  "endmodule\n"},
        BadSource{"assign_to_number",
                  "module m (input a);\n  assign 4 = a;\nendmodule\n"},
        BadSource{"case_without_endcase",
                  "module m (input s, output reg y);\n"
                  "  always @(*) case (s) 1'b0: y = 1'b0;\nendmodule\n"},
        BadSource{"stray_token_toplevel", "wire x;\n"},
        BadSource{"unsupported_task",
                  "module m;\n  task t; endtask\nendmodule\n"},
        BadSource{"unterminated_string",
                  "module m;\n  initial $display(\"oops);\nendmodule\n"},
        BadSource{"bad_based_literal",
                  "module m (output y);\n  assign y = 4'q1010;\nendmodule\n"}),
    [](const ::testing::TestParamInfo<BadSource>& param_info) {
      return param_info.param.name;
    });

// --- elaboration corner cases ------------------------------------------------------

TEST(ElaborateEdge, DeepHierarchyThreeLevels) {
  const Design d = parse(
      "module leaf (input x, output y);\n  assign y = ~x;\nendmodule\n"
      "module mid (input x, output y);\n"
      "  wire t;\n  leaf l1 (.x(x), .y(t));\n  leaf l2 (.x(t), .y(y));\n"
      "endmodule\n"
      "module top (input a, output b);\n"
      "  mid m1 (.x(a), .y(b));\nendmodule\n");
  const Module flat = elaborate(d, "top");
  EXPECT_NE(flat.find_net("m1.l1.y"), nullptr);
  EXPECT_NE(flat.find_net("m1.l2.x"), nullptr);
  // DFG extraction over the flattened design is one connected graph.
  const graph::Digraph g = dfg::extract_dfg(
      "module leaf (input x, output y);\n  assign y = ~x;\nendmodule\n"
      "module mid (input x, output y);\n"
      "  wire t;\n  leaf l1 (.x(x), .y(t));\n  leaf l2 (.x(t), .y(y));\n"
      "endmodule\n"
      "module top (input a, output b);\n"
      "  mid m1 (.x(a), .y(b));\nendmodule\n");
  EXPECT_GT(g.num_nodes(), 6u);
}

TEST(ElaborateEdge, UnconnectedOutputPortAllowed) {
  const Design d = parse(
      "module child (input x, output y, output z);\n"
      "  assign y = x;\n  assign z = ~x;\nendmodule\n"
      "module top (input a, output b);\n"
      "  child u (.x(a), .y(b), .z());\n"
      "endmodule\n");
  EXPECT_NO_THROW(elaborate(d, "top"));
}

TEST(ElaborateEdge, ParameterChainsAcrossLevels) {
  const Design d = parse(
      "module leaf (output [7:0] y);\n"
      "  parameter V = 1;\n  assign y = V + 1;\nendmodule\n"
      "module mid (output [7:0] y);\n"
      "  parameter W = 2;\n  leaf #(.V(W * 3)) u (.y(y));\nendmodule\n"
      "module top (output [7:0] y);\n"
      "  mid #(.W(5)) u (.y(y));\nendmodule\n");
  const Module flat = elaborate(d, "top");
  // leaf's V must have been resolved to 15 -> "(15 + 1)".
  bool found = false;
  for (const ContinuousAssign& ca : flat.assigns) {
    if (to_verilog(*ca.rhs).find("15") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ElaborateEdge, LocalparamNotOverridable) {
  const Design d = parse(
      "module child (output [7:0] y);\n"
      "  localparam K = 3;\n  assign y = K;\nendmodule\n"
      "module top (output [7:0] y);\n"
      "  child #(.K(9)) u (.y(y));\nendmodule\n");
  const Module flat = elaborate(d, "top");
  bool kept_local = false;
  for (const ContinuousAssign& ca : flat.assigns) {
    if (to_verilog(*ca.rhs).find('3') != std::string::npos) kept_local = true;
  }
  EXPECT_TRUE(kept_local);
}

TEST(ElaborateEdge, PositionalParamOverride) {
  const Design d = parse(
      "module child (output [7:0] y);\n"
      "  parameter A = 1;\n  parameter B = 2;\n"
      "  assign y = A + B;\nendmodule\n"
      "module top (output [7:0] y);\n"
      "  child #(7, 9) u (.y(y));\nendmodule\n");
  const Module flat = elaborate(d, "top");
  bool found7 = false;
  bool found9 = false;
  for (const ContinuousAssign& ca : flat.assigns) {
    const std::string text = to_verilog(*ca.rhs);
    if (text.find('7') != std::string::npos) found7 = true;
    if (text.find('9') != std::string::npos) found9 = true;
  }
  EXPECT_TRUE(found7);
  EXPECT_TRUE(found9);
}

TEST(ElaborateEdge, MixedNamedPositionalRejected) {
  const Design d = parse(
      "module child (input x, output y);\n  assign y = x;\nendmodule\n"
      "module top (input a, output b);\n"
      "  child u (.x(a), b);\nendmodule\n");
  EXPECT_THROW(elaborate(d, "top"), ParseError);
}

TEST(ElaborateEdge, TooManyPositionalRejected) {
  const Design d = parse(
      "module child (input x);\nendmodule\n"
      "module top (input a, input b);\n  child u (a, b);\nendmodule\n");
  EXPECT_THROW(elaborate(d, "top"), ParseError);
}

TEST(ElaborateEdge, ExpressionActualOnInputPort) {
  const graph::Digraph g = dfg::extract_dfg(
      "module inv (input x, output y);\n  assign y = ~x;\nendmodule\n"
      "module top (input a, input b, output c);\n"
      "  inv u (.x(a & b), .y(c));\n"
      "endmodule\n");
  // The & of the actual expression must appear in the DFG.
  bool has_and = false;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (g.node(static_cast<graph::NodeId>(v)).name == "and") has_and = true;
  }
  EXPECT_TRUE(has_and);
}

}  // namespace
}  // namespace gnn4ip::verilog
