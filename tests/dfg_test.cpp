// DFG pipeline tests: dataflow analysis, merge, trim, end-to-end shapes.
#include <gtest/gtest.h>

#include <set>

#include "dfg/dataflow.h"
#include "dfg/merge.h"
#include "dfg/node_kind.h"
#include "dfg/pipeline.h"
#include "graph/algorithms.h"
#include "verilog/elaborate.h"
#include "verilog/parser.h"

namespace gnn4ip::dfg {
namespace {

using graph::Digraph;
using graph::NodeId;

Digraph dfg_of(const std::string& src, bool run_trim = true) {
  PipelineOptions opts;
  opts.run_trim = run_trim;
  return extract_dfg(src, opts);
}

NodeKind kind_of_node(const Digraph& g, NodeId id) {
  return static_cast<NodeKind>(g.node(id).kind);
}

int count_kind(const Digraph& g, NodeKind kind) {
  int count = 0;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (kind_of_node(g, static_cast<NodeId>(v)) == kind) ++count;
  }
  return count;
}

// --- basic structure ---------------------------------------------------------

TEST(Dfg, SimpleAssignProducesOperatorChain) {
  const Digraph g = dfg_of(
      "module m (input a, input b, output y);\n"
      "  assign y = a & b;\n"
      "endmodule\n");
  // Nodes: y (output), a, b (inputs), and-operator.
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(count_kind(g, NodeKind::kInput), 2);
  EXPECT_EQ(count_kind(g, NodeKind::kOutput), 1);
  EXPECT_EQ(count_kind(g, NodeKind::kAnd), 1);

  // Output is a root (no in-edges), inputs are leaves (no out-edges).
  const NodeId y = g.find_by_name("y");
  ASSERT_NE(y, graph::kInvalidNode);
  EXPECT_EQ(g.in_degree(y), 0u);
  EXPECT_EQ(g.out_degree(y), 1u);
  const NodeId a = g.find_by_name("a");
  EXPECT_EQ(g.out_degree(a), 0u);
}

TEST(Dfg, OutputsAreRootsInputsAreLeaves) {
  const Digraph g = dfg_of(
      "module m (input a, input b, input c, output x, output z);\n"
      "  assign x = (a + b) * c;\n"
      "  assign z = a - c;\n"
      "endmodule\n");
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto id = static_cast<NodeId>(v);
    if (kind_of_node(g, id) == NodeKind::kOutput) {
      EXPECT_EQ(g.in_degree(id), 0u) << g.node(id).name;
    }
    if (kind_of_node(g, id) == NodeKind::kInput) {
      EXPECT_EQ(g.out_degree(id), 0u) << g.node(id).name;
    }
  }
}

TEST(Dfg, SharedSignalNodesMergeTrees) {
  const Digraph g = dfg_of(
      "module m (input a, input b, output x, output y);\n"
      "  wire t;\n"
      "  assign t = a ^ b;\n"
      "  assign x = t & a;\n"
      "  assign y = t | b;\n"
      "endmodule\n");
  // Exactly one node for t, consumed by both output trees.
  const NodeId t = g.find_by_name("t");
  ASSERT_NE(t, graph::kInvalidNode);
  EXPECT_EQ(g.in_degree(t), 2u);   // and-op and or-op reference t
  EXPECT_EQ(g.out_degree(t), 1u);  // driven by xor
}

TEST(Dfg, ConstantsSharedPerLiteral) {
  const Digraph g = dfg_of(
      "module m (input [7:0] a, output [7:0] x, output [7:0] y);\n"
      "  assign x = a + 8'h01;\n"
      "  assign y = a - 8'h01;\n"
      "endmodule\n");
  EXPECT_EQ(count_kind(g, NodeKind::kConstant), 1);
}

TEST(Dfg, GatePrimitivesBecomeOperatorNodes) {
  const Digraph g = dfg_of(
      "module m (input a, input b, output y);\n"
      "  wire t1, t2;\n"
      "  xor (t1, a, b);\n"
      "  and (t2, a, b);\n"
      "  or (y, t1, t2);\n"
      "endmodule\n");
  EXPECT_EQ(count_kind(g, NodeKind::kXor), 1);
  EXPECT_EQ(count_kind(g, NodeKind::kAnd), 1);
  EXPECT_EQ(count_kind(g, NodeKind::kOr), 1);
}

TEST(Dfg, NotAndBufGatesMultipleOutputs) {
  const Digraph g = dfg_of(
      "module m (input a, output x, output y);\n"
      "  not (x, y0, a);\n"  // two outputs driven by one input
      "  buf (y, y0);\n"
      "endmodule\n");
  EXPECT_GE(count_kind(g, NodeKind::kNot), 1);
  EXPECT_GE(count_kind(g, NodeKind::kBuf), 1);
}

// --- procedural semantics ------------------------------------------------------

TEST(Dfg, IfBecomesMux) {
  const Digraph g = dfg_of(
      "module m (input s, input a, input b, output reg y);\n"
      "  always @(*) begin\n"
      "    if (s) y = a;\n"
      "    else y = b;\n"
      "  end\n"
      "endmodule\n");
  EXPECT_EQ(count_kind(g, NodeKind::kMux), 1);
  // Mux feeds from s, a, b.
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (kind_of_node(g, static_cast<NodeId>(v)) == NodeKind::kMux) {
      EXPECT_EQ(g.out_degree(static_cast<NodeId>(v)), 3u);
    }
  }
}

TEST(Dfg, IfWithoutElseHoldsPreviousValue) {
  const Digraph g = dfg_of(
      "module m (input clk, input en, input d, output reg q);\n"
      "  always @(posedge clk) begin\n"
      "    if (en) q <= d;\n"
      "  end\n"
      "endmodule\n");
  // q depends on itself through the mux else-branch (register feedback).
  const NodeId q = g.find_by_name("q");
  ASSERT_NE(q, graph::kInvalidNode);
  const auto reachable =
      graph::reachable(g, {q}, graph::Direction::kForward);
  EXPECT_TRUE(reachable[static_cast<std::size_t>(q)]);
  bool q_in_own_tree = false;
  for (NodeId u : g.in_neighbors(q)) {
    (void)u;
    q_in_own_tree = true;  // something references q
  }
  EXPECT_TRUE(q_in_own_tree);
}

TEST(Dfg, RegisterKindForEdgeTriggered) {
  const Digraph g = dfg_of(
      "module m (input clk, input d, output y);\n"
      "  reg st;\n"
      "  always @(posedge clk) st <= d;\n"
      "  assign y = st;\n"
      "endmodule\n");
  EXPECT_EQ(count_kind(g, NodeKind::kRegister), 1);
}

TEST(Dfg, BlockingAssignSubstitutesWithinBlock) {
  const Digraph g = dfg_of(
      "module m (input a, input b, output reg y);\n"
      "  reg t;\n"
      "  always @(*) begin\n"
      "    t = a & b;\n"
      "    y = t | a;\n"
      "  end\n"
      "endmodule\n");
  // y's tree must contain the AND through substitution.
  const NodeId y = g.find_by_name("y");
  const auto fwd = graph::reachable(g, {y}, graph::Direction::kForward);
  bool saw_and = false;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    if (fwd[v] &&
        kind_of_node(g, static_cast<NodeId>(v)) == NodeKind::kAnd) {
      saw_and = true;
    }
  }
  EXPECT_TRUE(saw_and);
}

TEST(Dfg, CaseBecomesMuxChainWithEq) {
  const Digraph g = dfg_of(
      "module m (input [1:0] s, input a, input b, input c, output reg y);\n"
      "  always @(*) begin\n"
      "    case (s)\n"
      "      2'b00: y = a;\n"
      "      2'b01: y = b;\n"
      "      default: y = c;\n"
      "    endcase\n"
      "  end\n"
      "endmodule\n");
  EXPECT_EQ(count_kind(g, NodeKind::kMux), 2);
  EXPECT_EQ(count_kind(g, NodeKind::kEq), 2);
}

TEST(Dfg, MultiLabelCaseUsesLogOr) {
  const Digraph g = dfg_of(
      "module m (input [1:0] s, input a, input b, output reg y);\n"
      "  always @(*) begin\n"
      "    case (s)\n"
      "      2'b00, 2'b11: y = a;\n"
      "      default: y = b;\n"
      "    endcase\n"
      "  end\n"
      "endmodule\n");
  EXPECT_EQ(count_kind(g, NodeKind::kLogOr), 1);
  EXPECT_EQ(count_kind(g, NodeKind::kEq), 2);
}

TEST(Dfg, NonblockingReadsPreBlockValues) {
  // Swap idiom: both registers must read the *old* value of the other.
  const Digraph g = dfg_of(
      "module m (input clk, output reg a, output reg b);\n"
      "  always @(posedge clk) begin\n"
      "    a <= b;\n"
      "    b <= a;\n"
      "  end\n"
      "endmodule\n");
  const NodeId a = g.find_by_name("a");
  const NodeId b = g.find_by_name("b");
  ASSERT_NE(a, graph::kInvalidNode);
  ASSERT_NE(b, graph::kInvalidNode);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_TRUE(g.has_edge(b, a));
}

TEST(Dfg, PartialBitAssignsMergeDependencies) {
  const Digraph g = dfg_of(
      "module m (input clk, input fb, output reg [1:0] r);\n"
      "  always @(posedge clk) begin\n"
      "    r[1] <= r[0];\n"
      "    r[0] <= fb;\n"
      "  end\n"
      "endmodule\n");
  const NodeId r = g.find_by_name("r");
  ASSERT_NE(r, graph::kInvalidNode);
  // r must depend (transitively) on both fb and itself.
  const auto fwd = graph::reachable(g, {r}, graph::Direction::kForward);
  const NodeId fb = g.find_by_name("fb");
  EXPECT_TRUE(fwd[static_cast<std::size_t>(fb)]);
}

// --- trim ----------------------------------------------------------------------

TEST(Dfg, TrimRemovesDisconnectedSubgraphs) {
  // `c` feeds only dead logic, so the {c, xor, dead1} component contains
  // no output and is trimmed. (Dead logic sharing an input with live
  // logic stays weakly connected and is kept — trim is per component.)
  const std::string src =
      "module m (input a, input b, input c, output y);\n"
      "  wire dead1, dead2;\n"
      "  assign dead1 = c ^ c;\n"  // feeds nothing
      "  assign y = a & b;\n"
      "endmodule\n";
  const Digraph untrimmed = dfg_of(src, /*run_trim=*/false);
  const Digraph trimmed = dfg_of(src, /*run_trim=*/true);
  EXPECT_LT(trimmed.num_nodes(), untrimmed.num_nodes());
  EXPECT_EQ(graph::num_weak_components(trimmed), 1);
  EXPECT_EQ(trimmed.find_by_name("dead1"), graph::kInvalidNode);
}

TEST(Dfg, TrimKeepsEverythingWhenConnected) {
  const std::string src =
      "module m (input a, output y);\n  assign y = ~a;\nendmodule\n";
  const Digraph untrimmed = dfg_of(src, false);
  const Digraph trimmed = dfg_of(src, true);
  EXPECT_EQ(trimmed.num_nodes(), untrimmed.num_nodes());
}

TEST(Dfg, TrimStatsReported) {
  verilog::Design d = verilog::parse(
      "module m (input a, output y);\n"
      "  wire unused_net;\n"
      "  assign y = a;\n"
      "endmodule\n");
  const verilog::Module flat = verilog::elaborate(d, "m");
  auto drivers = analyze_dataflow(flat);
  Digraph g = merge_drivers(flat, drivers);
  const TrimStats stats = trim(g);
  EXPECT_GE(stats.removed_isolated, 1u);
}

// --- hierarchy ---------------------------------------------------------------

TEST(Dfg, HierarchicalDesignFlattensIntoOneGraph) {
  const Digraph g = dfg_of(
      "module ha (input x, input y, output s, output c);\n"
      "  assign s = x ^ y;\n  assign c = x & y;\nendmodule\n"
      "module fa (input a, input b, input cin, output sum, output cout);\n"
      "  wire s1, c1, c2;\n"
      "  ha u1 (.x(a), .y(b), .s(s1), .c(c1));\n"
      "  ha u2 (.x(s1), .y(cin), .s(sum), .c(c2));\n"
      "  assign cout = c1 | c2;\n"
      "endmodule\n");
  EXPECT_EQ(graph::num_weak_components(g), 1);
  EXPECT_EQ(count_kind(g, NodeKind::kXor), 2);
  EXPECT_EQ(count_kind(g, NodeKind::kAnd), 2);
  EXPECT_NE(g.find_by_name("u1.s"), graph::kInvalidNode);
}

// --- paper example: same design, different codes --------------------------------

TEST(Dfg, PaperAdderVariantsDifferInTopologyNotBehavior) {
  const std::string adder1 =
      "module ADDER (input Num1, input Num2, input Cin,\n"
      "              output reg Sum, output reg Cout);\n"
      "  always @(Num1, Num2, Cin) begin\n"
      "    Sum <= ((Num1 ^ Num2) ^ Cin);\n"
      "    Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));\n"
      "  end\n"
      "endmodule\n";
  const std::string adder2 =
      "module ADDER (Num1, Num2, Cin, Sum, Cout);\n"
      "  input Num1, Num2, Cin;\n"
      "  output Sum, Cout;\n"
      "  wire t1, t2, t3;\n"
      "  xor (t1, Num1, Num2);\n"
      "  and (t2, Num1, Num2);\n"
      "  and (t3, t1, Cin);\n"
      "  xor (Sum, t1, Cin);\n"
      "  or (Cout, t3, t2);\n"
      "endmodule\n";
  const Digraph g1 = dfg_of(adder1);
  const Digraph g2 = dfg_of(adder2);
  // Different topologies (the research challenge §I-B)...
  EXPECT_NE(graph::structural_hash(g1), graph::structural_hash(g2));
  // ...but the same signal interface and comparable operator content.
  EXPECT_EQ(count_kind(g1, NodeKind::kInput), 3);
  EXPECT_EQ(count_kind(g2, NodeKind::kInput), 3);
  EXPECT_EQ(count_kind(g1, NodeKind::kOutput), 2);
  EXPECT_EQ(count_kind(g2, NodeKind::kOutput), 2);
  EXPECT_GE(count_kind(g2, NodeKind::kXor), 2);
}

// --- summaries -----------------------------------------------------------------

TEST(Dfg, SummarizeCounts) {
  const Digraph g = dfg_of(
      "module m (input a, input b, output y);\n"
      "  assign y = a + b;\n"
      "endmodule\n");
  const DfgSummary s = summarize(g);
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_inputs, 2u);
  EXPECT_EQ(s.num_outputs, 1u);
  EXPECT_EQ(s.num_operators, 1u);
}

TEST(Dfg, NodeKindVocabularyStable) {
  // The one-hot featurizer depends on this count; changing it invalidates
  // saved models, so pin it.
  EXPECT_EQ(kNodeKindCount, 43);
  EXPECT_TRUE(is_signal_kind(NodeKind::kInput));
  EXPECT_TRUE(is_signal_kind(NodeKind::kConstant));
  EXPECT_FALSE(is_signal_kind(NodeKind::kAdd));
  EXPECT_TRUE(is_operator_kind(NodeKind::kMux));
}

}  // namespace
}  // namespace gnn4ip::dfg
