// Dense matrix and sparse CSR tests.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/csr.h"
#include "tensor/matrix.h"
#include "util/contract.h"
#include "util/rng.h"

namespace gnn4ip::tensor {
namespace {

TEST(Matrix, ConstructionAndFill) {
  Matrix m(2, 3, 1.5F);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5F);
  m.fill(0.0F);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0F);
}

TEST(Matrix, FromRowsAndAt) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0F);
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.0F);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), util::ContractViolation);
}

TEST(Matrix, IndexOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), util::ContractViolation);
  EXPECT_THROW((void)m.at(0, 2), util::ContractViolation);
}

TEST(Matrix, MatmulSmall) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0F);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0F);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0F);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0F);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), util::ContractViolation);
}

TEST(Matrix, TransposedVariantsAgree) {
  util::Rng rng(5);
  Matrix a(4, 3);
  Matrix b(4, 5);
  for (float& x : a.data()) x = rng.uniform(-1, 1);
  for (float& x : b.data()) x = rng.uniform(-1, 1);
  // AᵀB via explicit transpose vs fused.
  const Matrix expected = matmul(transpose(a), b);
  const Matrix fused = matmul_at_b(a, b);
  EXPECT_LT(max_abs_diff(expected, fused), 1e-5F);

  Matrix c(5, 3);  // A·Cᵀ with A 4×3 needs C ?×3
  for (float& x : c.data()) x = rng.uniform(-1, 1);
  const Matrix expected2 = matmul(a, transpose(c));
  const Matrix fused2 = matmul_a_bt(a, c);
  EXPECT_LT(max_abs_diff(expected2, fused2), 1e-5F);
}

TEST(Matrix, AddSubtractHadamard) {
  const Matrix a = Matrix::from_rows({{1, 2}});
  const Matrix b = Matrix::from_rows({{3, 5}});
  EXPECT_FLOAT_EQ(add(a, b).at(0, 1), 7.0F);
  EXPECT_FLOAT_EQ(subtract(b, a).at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(hadamard(a, b).at(0, 1), 10.0F);
}

TEST(Matrix, NormsAndDot) {
  const Matrix a = Matrix::from_rows({{3, 4}});
  EXPECT_FLOAT_EQ(a.frobenius_norm(), 5.0F);
  EXPECT_FLOAT_EQ(a.max_abs(), 4.0F);
  const Matrix b = Matrix::from_rows({{1, 2}});
  EXPECT_FLOAT_EQ(dot(a, b), 11.0F);
}

TEST(Matrix, AxpyAndScale) {
  Matrix a = Matrix::from_rows({{1, 1}});
  const Matrix b = Matrix::from_rows({{2, 4}});
  a.axpy_in_place(0.5F, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(a.at(0, 1), 3.0F);
  a.scale_in_place(2.0F);
  EXPECT_FLOAT_EQ(a.at(0, 1), 6.0F);
}

TEST(Matrix, GlorotBoundsAndSpread) {
  util::Rng rng(3);
  const Matrix w = Matrix::glorot(30, 20, rng);
  const float bound = std::sqrt(6.0F / 50.0F);
  float max_seen = 0.0F;
  for (float x : w.data()) {
    EXPECT_LE(std::fabs(x), bound + 1e-6F);
    max_seen = std::max(max_seen, std::fabs(x));
  }
  EXPECT_GT(max_seen, bound * 0.5F);  // actually spread out
}

TEST(Csr, FromTripletsAndDense) {
  const Csr s = Csr::from_triplets(
      2, 3, {{0, 0, 1.0F}, {0, 2, 2.0F}, {1, 1, 3.0F}, {0, 0, 0.5F}});
  EXPECT_EQ(s.nnz(), 3u);  // duplicate (0,0) summed
  const Matrix d = s.to_dense();
  EXPECT_FLOAT_EQ(d.at(0, 0), 1.5F);
  EXPECT_FLOAT_EQ(d.at(0, 2), 2.0F);
  EXPECT_FLOAT_EQ(d.at(1, 1), 3.0F);
  EXPECT_FLOAT_EQ(d.at(1, 0), 0.0F);
}

TEST(Csr, MultiplyMatchesDense) {
  util::Rng rng(7);
  std::vector<Triplet> triplets;
  for (int k = 0; k < 30; ++k) {
    triplets.push_back({rng.next_below(6), rng.next_below(5),
                        rng.uniform(-1, 1)});
  }
  const Csr s = Csr::from_triplets(6, 5, triplets);
  Matrix x(5, 4);
  for (float& v : x.data()) v = rng.uniform(-1, 1);
  const Matrix via_sparse = s.multiply(x);
  const Matrix via_dense = matmul(s.to_dense(), x);
  EXPECT_LT(max_abs_diff(via_sparse, via_dense), 1e-5F);
}

TEST(Csr, MultiplyTransposedMatchesDense) {
  util::Rng rng(9);
  std::vector<Triplet> triplets;
  for (int k = 0; k < 25; ++k) {
    triplets.push_back({rng.next_below(4), rng.next_below(7),
                        rng.uniform(-1, 1)});
  }
  const Csr s = Csr::from_triplets(4, 7, triplets);
  Matrix x(4, 3);
  for (float& v : x.data()) v = rng.uniform(-1, 1);
  const Matrix via_sparse = s.multiply_transposed(x);
  const Matrix via_dense = matmul(transpose(s.to_dense()), x);
  EXPECT_LT(max_abs_diff(via_sparse, via_dense), 1e-5F);
}

TEST(Csr, ShapeChecks) {
  const Csr s = Csr::from_triplets(2, 3, {{0, 0, 1.0F}});
  Matrix wrong(2, 2);
  EXPECT_THROW(s.multiply(wrong), util::ContractViolation);
  Matrix wrong_t(3, 2);
  EXPECT_THROW(s.multiply_transposed(wrong_t), util::ContractViolation);
  EXPECT_THROW(Csr::from_triplets(1, 1, {{1, 0, 1.0F}}),
               util::ContractViolation);
}

TEST(Csr, EmptyMatrixMultiplies) {
  const Csr s = Csr::from_triplets(3, 3, {});
  Matrix x(3, 2, 1.0F);
  const Matrix y = s.multiply(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(y.at(2, 1), 0.0F);
}

}  // namespace
}  // namespace gnn4ip::tensor
