// Multi-consumer screening invariants. The acceptance bar for the
// shard-striped locking refactor: for a fixed submission stream, the
// verdict set (and post-quiesce top_k) is bit-identical across
// {1,2,4} consumers × {1,2,4} shards × {1,2,8} workers, with live
// eviction running — any interleaving of consumers must reproduce the
// sequential single-consumer corpus states, because commits are
// per-submission and ticket-ordered. The churn/close/stress tests below
// are the TSan targets: they race producers, consumers, readers, and
// eviction against each other and assert nothing hangs, no future is
// dropped, and structural invariants hold.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "audit/async_auditor.h"
#include "audit/audit_service.h"
#include "core/gnn4ip.h"
#include "core/sharded_corpus.h"
#include "data/corpus.h"
#include "data/rtl_designs.h"
#include "util/bounded_queue.h"
#include "util/contract.h"

namespace gnn4ip::audit {
namespace {

constexpr std::size_t kNoIndex = core::ShardedCorpus::kNoIndex;

std::vector<train::GraphEntry> stream_corpus() {
  data::RtlCorpusOptions options;
  options.instances_per_family = 3;
  options.families = {"adder", "crc8", "parity", "counter"};
  return make_graph_entries(data::build_rtl_corpus(options));
}

/// Reports must agree bit-for-bit: same acceptance, same verdict list
/// (names, similarities, flags, indices), same best.
void expect_reports_identical(const ScreenReport& got,
                              const ScreenReport& want,
                              const std::string& config) {
  EXPECT_EQ(got.submission.name, want.submission.name) << config;
  EXPECT_EQ(got.submission.accepted, want.submission.accepted) << config;
  EXPECT_EQ(got.submission.corpus_index, want.submission.corpus_index)
      << config;
  ASSERT_EQ(got.verdicts.size(), want.verdicts.size())
      << config << " query " << want.submission.name;
  for (std::size_t v = 0; v < want.verdicts.size(); ++v) {
    EXPECT_EQ(got.verdicts[v].matched, want.verdicts[v].matched) << config;
    EXPECT_EQ(got.verdicts[v].similarity, want.verdicts[v].similarity)
        << config << " query " << want.submission.name << " vs "
        << want.verdicts[v].matched;
    EXPECT_EQ(got.verdicts[v].flagged, want.verdicts[v].flagged) << config;
    EXPECT_EQ(got.verdicts[v].corpus_index, want.verdicts[v].corpus_index)
        << config;
  }
  ASSERT_EQ(got.best.has_value(), want.best.has_value()) << config;
  if (want.best) {
    EXPECT_EQ(got.best->matched, want.best->matched) << config;
    EXPECT_EQ(got.best->similarity, want.best->similarity) << config;
  }
}

TEST(MultiConsumer, VerdictSetInvariantAcrossConsumersShardsWorkersGrid) {
  // The tentpole acceptance grid. One fixed submission stream (a pinned
  // library + 8 screened designs) with a live eviction budget; the
  // sequential single-consumer single-shard single-worker run is the
  // reference, and every {consumers, shards, workers} cell must
  // reproduce its reports cell-by-cell and its post-quiesce top_k.
  gnn::Hw2Vec model;
  const auto entries = stream_corpus();
  ASSERT_GE(entries.size(), 12u);
  const std::size_t library = 4;
  const std::size_t streamed = 8;

  const auto make_options = [&](std::size_t shards, std::size_t workers) {
    AuditOptions options;
    options.scorer.num_threads = workers;
    options.scorer.delta = -2.0F;  // every resident match is a verdict
    options.num_shards = shards;
    options.max_resident = library + 2;  // eviction churns mid-stream
    return options;
  };

  // Reference: synchronous, one submission per screen() call — the
  // per-submission commit semantics make this THE sequential order any
  // consumer pool must reproduce.
  std::vector<ScreenReport> expected;
  AuditService reference(model, make_options(1, 1));
  for (std::size_t i = 0; i < library; ++i) {
    ASSERT_TRUE(reference.add_library(entries[i]).accepted);
  }
  for (std::size_t i = 0; i < streamed; ++i) {
    ASSERT_TRUE(reference.submit(entries[library + i]));
    for (ScreenReport& r : reference.screen()) expected.push_back(std::move(r));
  }
  ASSERT_EQ(expected.size(), streamed);
  const std::vector<Verdict> expected_top =
      reference.top_k(entries[0].name, 3);

  for (const std::size_t consumers : {1u, 2u, 4u}) {
    for (const std::size_t shards : {1u, 2u, 4u}) {
      for (const std::size_t workers : {1u, 2u, 8u}) {
        const std::string config = "consumers=" + std::to_string(consumers) +
                                   " shards=" + std::to_string(shards) +
                                   " workers=" + std::to_string(workers);
        AsyncOptions async;
        async.num_consumers = consumers;
        async.max_batch = 1;  // maximal cross-consumer interleaving
        AsyncAuditor auditor(model, make_options(shards, workers),
                             std::move(async));
        for (std::size_t i = 0; i < library; ++i) {
          ASSERT_TRUE(auditor.service().add_library(entries[i]).accepted);
        }
        std::vector<std::future<ScreenReport>> futures;
        for (std::size_t i = 0; i < streamed; ++i) {
          futures.push_back(auditor.submit(entries[library + i]));
        }
        auditor.quiesce();
        for (std::size_t r = 0; r < streamed; ++r) {
          expect_reports_identical(futures[r].get(), expected[r], config);
        }
        // Post-quiesce top_k: the resident corpus itself converged to
        // the same state, not just the reports.
        const std::vector<Verdict> top =
            auditor.service().top_k(entries[0].name, 3);
        ASSERT_EQ(top.size(), expected_top.size()) << config;
        for (std::size_t t = 0; t < top.size(); ++t) {
          EXPECT_EQ(top[t].matched, expected_top[t].matched) << config;
          EXPECT_EQ(top[t].similarity, expected_top[t].similarity) << config;
          EXPECT_EQ(top[t].corpus_index, expected_top[t].corpus_index)
              << config;
        }
        EXPECT_EQ(auditor.service().resident(), reference.resident())
            << config;
      }
    }
  }
}

TEST(MultiConsumer, OnReportSerializedInTicketOrderAcrossConsumers) {
  // on_report fires inside the commit turnstile: mutually exclusive
  // across consumers and in global ticket order. With one producer,
  // ticket order is submission order — the callback sequence must be
  // exactly the submitted names, even with 4 consumers racing.
  gnn::Hw2Vec model;
  const auto entries = stream_corpus();
  ASSERT_GE(entries.size(), 8u);

  AuditOptions options;
  options.num_shards = 2;
  std::vector<std::string> observed;
  std::atomic<int> in_callback{0};
  AsyncOptions async;
  async.num_consumers = 4;
  async.max_batch = 1;
  async.on_report = [&](const ScreenReport& report) {
    // Mutual exclusion: no second callback may be in flight.
    ASSERT_EQ(in_callback.fetch_add(1), 0);
    observed.push_back(report.submission.name);
    in_callback.fetch_sub(1);
  };
  AsyncAuditor auditor(model, options, std::move(async));
  std::vector<std::future<ScreenReport>> futures;
  for (const train::GraphEntry& entry : entries) {
    futures.push_back(auditor.submit(entry));
  }
  auditor.quiesce();
  ASSERT_EQ(observed.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(observed[i], entries[i].name);
    EXPECT_EQ(futures[i].get().submission.name, entries[i].name);
  }
}

TEST(MultiConsumer, ProducerConsumerChurnWithLiveEvictionAndReaders) {
  // The TSan stress target: 4 producers × 3 consumers × live eviction ×
  // a concurrent top_k reader, all against one service. Every future
  // must resolve, counters must balance, and the resident cache must
  // respect its bound at quiesce.
  gnn::Hw2Vec model;
  const auto entries = stream_corpus();
  ASSERT_GE(entries.size(), 6u);
  const std::size_t library = 2;

  AuditOptions options;
  options.num_shards = 2;
  options.max_resident = 3;
  options.scorer.num_threads = 2;
  AsyncOptions async;
  async.num_consumers = 3;
  async.max_batch = 2;
  async.queue_capacity = 8;  // small: producers hit backpressure
  AsyncAuditor auditor(model, options, std::move(async));
  for (std::size_t i = 0; i < library; ++i) {
    ASSERT_TRUE(auditor.service().add_library(entries[i]).accepted);
  }

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 8;
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<ScreenReport>>> futures(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t k = 0; k < kPerProducer; ++k) {
        const train::GraphEntry& entry =
            entries[library + (p + k) % (entries.size() - library)];
        futures[p].push_back(auditor.submit(
            "p" + std::to_string(p) + "#" + std::to_string(k), entry.tensors));
      }
    });
  }
  // Concurrent reader: top_k on a pinned library entry races commits
  // and compactions (the state lock's shared path).
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    while (!stop_reader.load()) {
      const std::vector<Verdict> top =
          auditor.service().top_k(entries[0].name, 2);
      ASSERT_LE(top.size(), 2u);
      (void)auditor.service().resident();
      (void)auditor.service().contains(entries[1].name);
    }
  });
  for (std::thread& t : producers) t.join();
  auditor.quiesce();
  stop_reader.store(true);
  reader.join();

  std::size_t accepted = 0;
  for (auto& per_producer : futures) {
    for (auto& f : per_producer) {
      const ScreenReport report = f.get();
      if (report.submission.accepted) ++accepted;
    }
  }
  EXPECT_EQ(accepted, kProducers * kPerProducer);
  EXPECT_EQ(auditor.submitted(), kProducers * kPerProducer);
  EXPECT_EQ(auditor.reported(), kProducers * kPerProducer);
  // Pinned library + the eviction bound: at quiesce the cache obeys
  // max_resident (library entries are pinned but within the bound).
  EXPECT_LE(auditor.service().resident(), options.max_resident);
  for (std::size_t i = 0; i < library; ++i) {
    EXPECT_TRUE(auditor.service().contains(entries[i].name));
  }
}

TEST(MultiConsumer, CloseWhileScreeningFulfilsEveryFuture) {
  // close() races in-flight screening and queued backlog across the
  // pool: everything already accepted must screen (drain-on-close),
  // late submissions must resolve with the rejected-report diagnostic,
  // and no future may ever hang or break.
  gnn::Hw2Vec model;
  const auto entries = stream_corpus();
  ASSERT_GE(entries.size(), 4u);

  AuditOptions options;
  options.num_shards = 2;
  AsyncOptions async;
  async.num_consumers = 2;
  async.max_batch = 1;
  async.queue_capacity = 4;
  AsyncAuditor auditor(model, options, std::move(async));

  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 10;
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<ScreenReport>>> futures(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t k = 0; k < kPerProducer; ++k) {
        futures[p].push_back(
            auditor.submit("p" + std::to_string(p) + "#" + std::to_string(k),
                           entries[k % entries.size()].tensors));
      }
    });
  }
  auditor.close();  // races the producers: some submissions lose
  for (std::thread& t : producers) t.join();

  std::size_t screened = 0;
  std::size_t rejected = 0;
  for (auto& per_producer : futures) {
    for (auto& f : per_producer) {
      const ScreenReport report = f.get();  // must never hang or throw
      if (report.submission.accepted) {
        ++screened;
      } else {
        EXPECT_FALSE(report.submission.error.message.empty());
        ++rejected;
      }
    }
  }
  EXPECT_EQ(screened + rejected, kProducers * kPerProducer);
  // Drain-on-close: everything the queue accepted was screened, so the
  // progress counters balance even though close() raced the producers.
  EXPECT_EQ(auditor.reported(), auditor.submitted());
  EXPECT_EQ(auditor.reported(), screened);
}

TEST(MultiConsumer, ShardedCorpusReadersRaceAdmissionsAndCompaction) {
  // Reader/writer interleave stress at the core layer: top_k and
  // score_new_rows scans race add(), remove(), and compact() from
  // sibling threads. Under TSan this is the proof the stripe/index/
  // epoch locking has no data race; in any build it proves scans only
  // ever see fully admitted rows (snapshot semantics) and a stable
  // row 0.
  gnn::Hw2Vec model;
  const auto entries = stream_corpus();
  ASSERT_GE(entries.size(), 4u);
  const auto embed = [&](std::size_t i) {
    return model.embed_inference(entries[i % entries.size()].tensors);
  };

  core::ShardedCorpus corpus(4);  // num_threads defaults to shared pool
  ASSERT_EQ(corpus.add("base", embed(0)), 0u);

  std::vector<std::thread> threads;
  // Writer-progress pacing: admitters push a token per admission and
  // the readers/compactor time-bound-wait on the queue between sweeps
  // (pop_for), so a hot reader spin cannot starve writers on a
  // reader-preferring rwlock — a real timed backoff tied to actual
  // writer progress, not a std::this_thread::yield scheduling hint
  // (the production access pattern interleaves reads and commits; the
  // starvation this prevents is a scheduling artifact, not a
  // correctness bug).
  util::BoundedQueue<std::size_t> progress(64);
  for (std::size_t w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t k = 0; k < 48; ++k) {
        const std::size_t g = corpus.add(
            "w" + std::to_string(w) + "#" + std::to_string(k), embed(k + 1));
        ASSERT_GT(g, 0u);
        if (k % 3 == 0) {
          // Churn tombstones. Global ids are documented as invalidated
          // by compact(), and the compactor below races this window —
          // an out-of-range throw just means the id went stale (the
          // production caller serializes remove/compact in the commit
          // slot and never sees this). g > 0, so a stale-but-in-range
          // id can only tombstone some non-base row, which the final
          // rebuild comparison below absorbs.
          try {
            corpus.remove(g);
          } catch (const std::exception&) {
          }
        }
        (void)progress.try_push(std::size_t{k});  // signal, never block
      }
    });
  }
  // Three readers, a bounded number of sweeps each: top_k of the stable
  // base row, full pair sweeps, and whole-corpus incremental scans.
  for (std::size_t r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      for (std::size_t iter = 0; iter < 40; ++iter) {
        const auto top = corpus.top_k(0, 5);
        ASSERT_LE(top.size(), 5u);
        for (const core::PairScore& p : top) {
          ASSERT_EQ(p.a, 0u);
          ASSERT_NE(p.b, 0u);
          ASSERT_GE(p.similarity, -1.0F);
          ASSERT_LE(p.similarity, 1.0F);
        }
        // first_new = 0 stays valid under racing compaction (any
        // positive watermark could exceed a just-compacted size).
        const tensor::Matrix scores = corpus.score_new_rows(0);
        ASSERT_EQ(scores.rows(), scores.cols());  // snapshot is square
        ASSERT_EQ(corpus.live(0), true);
        // Wait for writer progress (or 1ms, whichever first) before the
        // next sweep — yields the locks to the admitters for real.
        (void)progress.pop_for(std::chrono::milliseconds(1));
      }
    });
  }
  // One compactor: the global epoch racing everyone. Row 0 is live and
  // first-inserted, so its global id survives every renumbering.
  threads.emplace_back([&] {
    for (std::size_t k = 0; k < 24; ++k) {
      const std::vector<std::size_t> mapping = corpus.compact();
      if (!mapping.empty()) {
        ASSERT_EQ(mapping[0], 0u);
      }
      (void)progress.pop_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& t : threads) t.join();

  // Converged state: one final compact, then the corpus must be exactly
  // the live set in insertion order — a fresh single-threaded rebuild
  // of the same live rows produces identical top_k results.
  (void)corpus.compact();
  EXPECT_EQ(corpus.size(), corpus.live_count());
  EXPECT_EQ(corpus.name(0), "base");
  const auto final_top = corpus.top_k(0, 8);
  core::ShardedCorpus rebuilt(1);
  for (std::size_t g = 0; g < corpus.size(); ++g) {
    tensor::Matrix row_copy(1, corpus.dim());
    const std::span<const float> row = corpus.row(g);
    for (std::size_t d = 0; d < corpus.dim(); ++d) row_copy.row(0)[d] = row[d];
    rebuilt.add(corpus.name(g), row_copy);
  }
  const auto rebuilt_top = rebuilt.top_k(0, 8);
  ASSERT_EQ(final_top.size(), rebuilt_top.size());
  for (std::size_t t = 0; t < final_top.size(); ++t) {
    EXPECT_EQ(final_top[t].b, rebuilt_top[t].b);
    EXPECT_EQ(final_top[t].similarity, rebuilt_top[t].similarity);
  }
}

TEST(MultiConsumer, AddLibraryWhileConsumersStreamIsSafe) {
  // add_library takes its own admission ticket, so growing the pinned
  // library mid-stream lands between two commits instead of racing one.
  gnn::Hw2Vec model;
  const auto entries = stream_corpus();
  ASSERT_GE(entries.size(), 8u);

  AuditOptions options;
  options.num_shards = 2;
  AsyncOptions async;
  async.num_consumers = 2;
  async.max_batch = 1;
  AsyncAuditor auditor(model, options, std::move(async));
  ASSERT_TRUE(auditor.service().add_library(entries[0]).accepted);

  std::vector<std::future<ScreenReport>> futures;
  std::thread producer([&] {
    for (std::size_t k = 0; k < 12; ++k) {
      futures.push_back(auditor.submit("sub#" + std::to_string(k),
                                       entries[k % entries.size()].tensors));
    }
  });
  // Race pinned admissions against the stream.
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_TRUE(auditor.service().add_library(entries[i]).accepted);
  }
  producer.join();
  auditor.quiesce();
  for (auto& f : futures) EXPECT_TRUE(f.get().submission.accepted);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(auditor.service().contains(entries[i].name));
    EXPECT_TRUE(auditor.service().pinned(entries[i].name));
    EXPECT_NE(auditor.service().index_of(entries[i].name), kNoIndex);
  }
}

}  // namespace
}  // namespace gnn4ip::audit
