// Training-stack tests: optimizers, pair dataset, metrics, trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/gnn4ip.h"
#include "train/dataset.h"
#include "train/metrics.h"
#include "train/optimizer.h"
#include "train/trainer.h"

namespace gnn4ip::train {
namespace {

TEST(Optimizer, SgdStepsAgainstGradient) {
  tensor::Parameter p(tensor::Matrix::from_rows({{1.0F}}));
  p.grad.at(0, 0) = 2.0F;
  Sgd sgd({&p}, /*lr=*/0.1F);
  sgd.step();
  EXPECT_NEAR(p.value.at(0, 0), 0.8F, 1e-6F);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 0.0F);  // cleared
}

TEST(Optimizer, SgdMomentumAccumulates) {
  tensor::Parameter p(tensor::Matrix::from_rows({{0.0F}}));
  Sgd sgd({&p}, 0.1F, /*momentum=*/0.9F);
  for (int i = 0; i < 3; ++i) {
    p.grad.at(0, 0) = 1.0F;
    sgd.step();
  }
  // v1=1, v2=1.9, v3=2.71 -> total step = 0.1*(1+1.9+2.71).
  EXPECT_NEAR(p.value.at(0, 0), -0.561F, 1e-5F);
}

TEST(Optimizer, SgdWeightDecayShrinks) {
  tensor::Parameter p(tensor::Matrix::from_rows({{1.0F}}));
  Sgd sgd({&p}, 0.1F, 0.0F, /*weight_decay=*/1.0F);
  p.grad.at(0, 0) = 0.0F;
  sgd.step();
  EXPECT_NEAR(p.value.at(0, 0), 0.9F, 1e-6F);
}

TEST(Optimizer, AdamFirstStepIsLrSized) {
  tensor::Parameter p(tensor::Matrix::from_rows({{1.0F}}));
  Adam adam({&p}, /*lr=*/0.01F);
  p.grad.at(0, 0) = 5.0F;  // any positive gradient: first step ≈ lr
  adam.step();
  EXPECT_NEAR(p.value.at(0, 0), 1.0F - 0.01F, 1e-4F);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // Minimize (x-3)^2 — gradient 2(x-3).
  tensor::Parameter p(tensor::Matrix::from_rows({{-4.0F}}));
  Adam adam({&p}, 0.2F);
  for (int i = 0; i < 300; ++i) {
    p.grad.at(0, 0) = 2.0F * (p.value.at(0, 0) - 3.0F);
    adam.step();
  }
  EXPECT_NEAR(p.value.at(0, 0), 3.0F, 0.05F);
}

TEST(Optimizer, FactoryMakesBothKinds) {
  tensor::Parameter p(tensor::Matrix::from_rows({{0.0F}}));
  EXPECT_NE(make_optimizer(OptimizerKind::kSgd, {&p}, 0.1F), nullptr);
  EXPECT_NE(make_optimizer(OptimizerKind::kAdam, {&p}, 0.1F), nullptr);
}

// --- dataset -----------------------------------------------------------------

std::vector<GraphEntry> toy_entries(int families, int per_family) {
  // Tiny synthetic graphs; design key drives the labels.
  std::vector<GraphEntry> entries;
  for (int f = 0; f < families; ++f) {
    for (int i = 0; i < per_family; ++i) {
      graph::Digraph g;
      g.add_node("out", 1);
      for (int k = 0; k < 2 + f; ++k) {
        g.add_node("n", 5 + f);
        g.add_edge(0, static_cast<graph::NodeId>(k + 1));
      }
      GraphEntry e;
      e.name = "g" + std::to_string(f) + "_" + std::to_string(i);
      e.design = "design" + std::to_string(f);
      e.tensors = gnn::featurize(g);
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

TEST(PairDataset, AllPairsCountsAndLabels) {
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 4));
  // 12 graphs -> 66 pairs; similar = 3 * C(4,2) = 18.
  EXPECT_EQ(ds.pairs().size(), 66u);
  EXPECT_EQ(ds.num_similar(), 18u);
  EXPECT_EQ(ds.num_different(), 48u);
  for (const PairSample& p : ds.pairs()) {
    const bool same =
        ds.graphs()[p.a].design == ds.graphs()[p.b].design;
    EXPECT_EQ(p.label, same ? 1 : -1);
  }
}

TEST(PairDataset, StratifiedSplitPreservesRatio) {
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 6));
  util::Rng rng(5);
  const auto split = ds.split(0.25, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.pairs().size());
  auto count_similar = [&ds](const std::vector<std::size_t>& indices) {
    std::size_t n = 0;
    for (std::size_t i : indices) {
      if (ds.pairs()[i].label == 1) ++n;
    }
    return n;
  };
  const double train_ratio =
      static_cast<double>(count_similar(split.train)) / split.train.size();
  const double test_ratio =
      static_cast<double>(count_similar(split.test)) / split.test.size();
  EXPECT_NEAR(train_ratio, test_ratio, 0.05);
}

TEST(PairDataset, SplitDisjoint) {
  const PairDataset ds = PairDataset::all_pairs(toy_entries(2, 4));
  util::Rng rng(6);
  const auto split = ds.split(0.3, rng);
  std::vector<bool> seen(ds.pairs().size(), false);
  for (std::size_t i : split.train) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  for (std::size_t i : split.test) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

// --- metrics -----------------------------------------------------------------

TEST(Metrics, ConfusionAtThreshold) {
  const std::vector<float> scores = {0.9F, 0.8F, 0.2F, -0.5F};
  const std::vector<int> labels = {1, -1, 1, -1};
  const ConfusionMatrix cm = confusion_at(scores, labels, 0.5F);
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_NEAR(cm.accuracy(), 0.5, 1e-9);
  EXPECT_NEAR(cm.false_negative_rate(), 0.5, 1e-9);
}

TEST(Metrics, PrecisionRecallF1) {
  ConfusionMatrix cm;
  cm.tp = 8;
  cm.fp = 2;
  cm.fn = 4;
  cm.tn = 6;
  EXPECT_NEAR(cm.precision(), 0.8, 1e-9);
  EXPECT_NEAR(cm.recall(), 8.0 / 12.0, 1e-9);
  const double f1 = cm.f1();
  EXPECT_GT(f1, 0.7);
  EXPECT_LT(f1, 0.8);
}

TEST(Metrics, DegenerateCasesZero) {
  ConfusionMatrix cm;
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.precision(), 0.0);
  EXPECT_EQ(cm.recall(), 0.0);
  EXPECT_EQ(cm.f1(), 0.0);
  EXPECT_EQ(cm.false_negative_rate(), 0.0);
}

TEST(Metrics, TuneThresholdSeparable) {
  // Perfectly separable at delta ∈ (0.3, 0.7).
  const std::vector<float> scores = {0.9F, 0.7F, 0.3F, 0.1F};
  const std::vector<int> labels = {1, 1, -1, -1};
  const float delta = tune_threshold(scores, labels);
  const ConfusionMatrix cm = confusion_at(scores, labels, delta);
  EXPECT_NEAR(cm.accuracy(), 1.0, 1e-9);
  EXPECT_GT(delta, 0.3F);
  EXPECT_LT(delta, 0.7F);
}

TEST(Metrics, TuneThresholdNoisy) {
  const std::vector<float> scores = {0.9F, 0.2F, 0.8F, 0.4F, 0.1F};
  const std::vector<int> labels = {1, 1, -1, -1, -1};
  const float delta = tune_threshold(scores, labels);
  // Best achievable accuracy here is 3/5 (delta above 0.9 or in (0.4,0.8) etc.)
  EXPECT_GE(confusion_at(scores, labels, delta).accuracy(), 0.6 - 1e-9);
}

// --- trainer ------------------------------------------------------------------

TEST(Trainer, LossDecreasesOnToyCorpus) {
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  mc.seed = 3;
  gnn::Hw2Vec model(mc);
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 5));
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_graphs = 15;
  tc.learning_rate = 5e-3F;
  tc.seed = 9;
  Trainer trainer(model, ds, tc);
  const EpochStats first = trainer.train_epoch();
  EpochStats last = first;
  for (int e = 0; e < 14; ++e) last = trainer.train_epoch();
  EXPECT_LT(last.mean_loss, first.mean_loss);
}

TEST(Trainer, EvaluateSeparatesToyFamilies) {
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  mc.seed = 4;
  gnn::Hw2Vec model(mc);
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 6));
  TrainConfig tc;
  tc.epochs = 25;
  tc.batch_graphs = 18;
  tc.learning_rate = 5e-3F;
  tc.seed = 10;
  Trainer trainer(model, ds, tc);
  trainer.fit();
  const EvalResult result = trainer.evaluate();
  // Toy families are trivially separable; expect high accuracy.
  EXPECT_GT(result.confusion.accuracy(), 0.85);
  EXPECT_EQ(result.scores.size(), trainer.split().test.size());
  EXPECT_GT(result.seconds_per_sample, 0.0);
}

TEST(Trainer, PairBatchModeAlsoTrains) {
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  mc.seed = 5;
  gnn::Hw2Vec model(mc);
  const PairDataset ds = PairDataset::all_pairs(toy_entries(2, 5));
  TrainConfig tc;
  tc.epochs = 1;
  tc.mode = TrainConfig::BatchMode::kPairBatch;
  tc.batch_pairs = 16;
  tc.max_steps_per_epoch = 4;
  tc.seed = 11;
  Trainer trainer(model, ds, tc);
  const EpochStats stats = trainer.train_epoch();
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.pairs_seen, 0u);
}

TEST(Trainer, EmbedAllIdenticalAcross1And2And8Workers) {
  // The parallel embed_all fan-out must never change the embeddings:
  // same model, same graphs, any worker count -> bit-identical rows.
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 4));
  std::vector<std::vector<tensor::Matrix>> per_count;
  for (std::size_t threads : {1u, 2u, 8u}) {
    gnn::Hw2VecConfig mc;
    mc.hidden_dim = 8;
    mc.seed = 21;
    gnn::Hw2Vec model(mc);
    TrainConfig tc;
    tc.seed = 22;
    tc.num_threads = threads;
    Trainer trainer(model, ds, tc);
    per_count.push_back(trainer.embed_all());
  }
  ASSERT_EQ(per_count.size(), 3u);
  ASSERT_EQ(per_count[0].size(), ds.graphs().size());
  for (std::size_t g = 0; g < per_count[0].size(); ++g) {
    EXPECT_EQ(tensor::max_abs_diff(per_count[0][g], per_count[1][g]), 0.0F);
    EXPECT_EQ(tensor::max_abs_diff(per_count[0][g], per_count[2][g]), 0.0F);
  }
}

TEST(Trainer, ScorePairsMatchesEvaluateScores) {
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  gnn::Hw2Vec model(mc);
  const PairDataset ds = PairDataset::all_pairs(toy_entries(2, 4));
  TrainConfig tc;
  tc.epochs = 2;
  tc.seed = 12;
  Trainer trainer(model, ds, tc);
  trainer.fit();
  const EvalResult result = trainer.evaluate();
  const std::vector<float> scores = trainer.score_pairs(trainer.split().test);
  ASSERT_EQ(scores.size(), result.scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(scores[i], result.scores[i], 1e-5F);
  }
}

}  // namespace
}  // namespace gnn4ip::train
