// Training-stack tests: optimizers, pair dataset, metrics, trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "core/gnn4ip.h"
#include "train/dataset.h"
#include "train/metrics.h"
#include "train/optimizer.h"
#include "train/trainer.h"

namespace gnn4ip::train {
namespace {

TEST(Optimizer, SgdStepsAgainstGradient) {
  tensor::Parameter p(tensor::Matrix::from_rows({{1.0F}}));
  p.grad.at(0, 0) = 2.0F;
  Sgd sgd({&p}, /*lr=*/0.1F);
  sgd.step();
  EXPECT_NEAR(p.value.at(0, 0), 0.8F, 1e-6F);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 0.0F);  // cleared
}

TEST(Optimizer, SgdMomentumAccumulates) {
  tensor::Parameter p(tensor::Matrix::from_rows({{0.0F}}));
  Sgd sgd({&p}, 0.1F, /*momentum=*/0.9F);
  for (int i = 0; i < 3; ++i) {
    p.grad.at(0, 0) = 1.0F;
    sgd.step();
  }
  // v1=1, v2=1.9, v3=2.71 -> total step = 0.1*(1+1.9+2.71).
  EXPECT_NEAR(p.value.at(0, 0), -0.561F, 1e-5F);
}

TEST(Optimizer, SgdWeightDecayShrinks) {
  tensor::Parameter p(tensor::Matrix::from_rows({{1.0F}}));
  Sgd sgd({&p}, 0.1F, 0.0F, /*weight_decay=*/1.0F);
  p.grad.at(0, 0) = 0.0F;
  sgd.step();
  EXPECT_NEAR(p.value.at(0, 0), 0.9F, 1e-6F);
}

TEST(Optimizer, AdamFirstStepIsLrSized) {
  tensor::Parameter p(tensor::Matrix::from_rows({{1.0F}}));
  Adam adam({&p}, /*lr=*/0.01F);
  p.grad.at(0, 0) = 5.0F;  // any positive gradient: first step ≈ lr
  adam.step();
  EXPECT_NEAR(p.value.at(0, 0), 1.0F - 0.01F, 1e-4F);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // Minimize (x-3)^2 — gradient 2(x-3).
  tensor::Parameter p(tensor::Matrix::from_rows({{-4.0F}}));
  Adam adam({&p}, 0.2F);
  for (int i = 0; i < 300; ++i) {
    p.grad.at(0, 0) = 2.0F * (p.value.at(0, 0) - 3.0F);
    adam.step();
  }
  EXPECT_NEAR(p.value.at(0, 0), 3.0F, 0.05F);
}

TEST(Optimizer, FactoryMakesBothKinds) {
  tensor::Parameter p(tensor::Matrix::from_rows({{0.0F}}));
  EXPECT_NE(make_optimizer(OptimizerKind::kSgd, {&p}, 0.1F), nullptr);
  EXPECT_NE(make_optimizer(OptimizerKind::kAdam, {&p}, 0.1F), nullptr);
}

// --- dataset -----------------------------------------------------------------

std::vector<GraphEntry> toy_entries(int families, int per_family) {
  // Tiny synthetic graphs; design key drives the labels.
  std::vector<GraphEntry> entries;
  for (int f = 0; f < families; ++f) {
    for (int i = 0; i < per_family; ++i) {
      graph::Digraph g;
      g.add_node("out", 1);
      for (int k = 0; k < 2 + f; ++k) {
        g.add_node("n", 5 + f);
        g.add_edge(0, static_cast<graph::NodeId>(k + 1));
      }
      GraphEntry e;
      e.name = "g" + std::to_string(f) + "_" + std::to_string(i);
      e.design = "design" + std::to_string(f);
      e.tensors = gnn::featurize(g);
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

TEST(PairDataset, AllPairsCountsAndLabels) {
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 4));
  // 12 graphs -> 66 pairs; similar = 3 * C(4,2) = 18.
  EXPECT_EQ(ds.pairs().size(), 66u);
  EXPECT_EQ(ds.num_similar(), 18u);
  EXPECT_EQ(ds.num_different(), 48u);
  for (const PairSample& p : ds.pairs()) {
    const bool same =
        ds.graphs()[p.a].design == ds.graphs()[p.b].design;
    EXPECT_EQ(p.label, same ? 1 : -1);
  }
}

TEST(PairDataset, StratifiedSplitPreservesRatio) {
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 6));
  util::Rng rng(5);
  const auto split = ds.split(0.25, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.pairs().size());
  auto count_similar = [&ds](const std::vector<std::size_t>& indices) {
    std::size_t n = 0;
    for (std::size_t i : indices) {
      if (ds.pairs()[i].label == 1) ++n;
    }
    return n;
  };
  const double train_ratio =
      static_cast<double>(count_similar(split.train)) / split.train.size();
  const double test_ratio =
      static_cast<double>(count_similar(split.test)) / split.test.size();
  EXPECT_NEAR(train_ratio, test_ratio, 0.05);
}

TEST(PairDataset, SplitDisjoint) {
  const PairDataset ds = PairDataset::all_pairs(toy_entries(2, 4));
  util::Rng rng(6);
  const auto split = ds.split(0.3, rng);
  std::vector<bool> seen(ds.pairs().size(), false);
  for (std::size_t i : split.train) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
  for (std::size_t i : split.test) {
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

// --- metrics -----------------------------------------------------------------

TEST(Metrics, ConfusionAtThreshold) {
  const std::vector<float> scores = {0.9F, 0.8F, 0.2F, -0.5F};
  const std::vector<int> labels = {1, -1, 1, -1};
  const ConfusionMatrix cm = confusion_at(scores, labels, 0.5F);
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_NEAR(cm.accuracy(), 0.5, 1e-9);
  EXPECT_NEAR(cm.false_negative_rate(), 0.5, 1e-9);
}

TEST(Metrics, PrecisionRecallF1) {
  ConfusionMatrix cm;
  cm.tp = 8;
  cm.fp = 2;
  cm.fn = 4;
  cm.tn = 6;
  EXPECT_NEAR(cm.precision(), 0.8, 1e-9);
  EXPECT_NEAR(cm.recall(), 8.0 / 12.0, 1e-9);
  const double f1 = cm.f1();
  EXPECT_GT(f1, 0.7);
  EXPECT_LT(f1, 0.8);
}

TEST(Metrics, DegenerateCasesZero) {
  ConfusionMatrix cm;
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.precision(), 0.0);
  EXPECT_EQ(cm.recall(), 0.0);
  EXPECT_EQ(cm.f1(), 0.0);
  EXPECT_EQ(cm.false_negative_rate(), 0.0);
}

TEST(Metrics, TuneThresholdSeparable) {
  // Perfectly separable at delta ∈ (0.3, 0.7).
  const std::vector<float> scores = {0.9F, 0.7F, 0.3F, 0.1F};
  const std::vector<int> labels = {1, 1, -1, -1};
  const float delta = tune_threshold(scores, labels);
  const ConfusionMatrix cm = confusion_at(scores, labels, delta);
  EXPECT_NEAR(cm.accuracy(), 1.0, 1e-9);
  EXPECT_GT(delta, 0.3F);
  EXPECT_LT(delta, 0.7F);
}

TEST(Metrics, TuneThresholdNoisy) {
  const std::vector<float> scores = {0.9F, 0.2F, 0.8F, 0.4F, 0.1F};
  const std::vector<int> labels = {1, 1, -1, -1, -1};
  const float delta = tune_threshold(scores, labels);
  // Best achievable accuracy here is 3/5 (delta above 0.9 or in (0.4,0.8) etc.)
  EXPECT_GE(confusion_at(scores, labels, delta).accuracy(), 0.6 - 1e-9);
}

// --- trainer ------------------------------------------------------------------

TEST(Trainer, LossDecreasesOnToyCorpus) {
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  mc.seed = 3;
  gnn::Hw2Vec model(mc);
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 5));
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_graphs = 15;
  tc.learning_rate = 5e-3F;
  tc.seed = 9;
  Trainer trainer(model, ds, tc);
  const EpochStats first = trainer.train_epoch();
  EpochStats last = first;
  for (int e = 0; e < 14; ++e) last = trainer.train_epoch();
  EXPECT_LT(last.mean_loss, first.mean_loss);
}

TEST(Trainer, EvaluateSeparatesToyFamilies) {
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  mc.seed = 4;
  gnn::Hw2Vec model(mc);
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 6));
  TrainConfig tc;
  tc.epochs = 25;
  tc.batch_graphs = 18;
  tc.learning_rate = 5e-3F;
  tc.seed = 10;
  Trainer trainer(model, ds, tc);
  trainer.fit();
  const EvalResult result = trainer.evaluate();
  // Toy families are trivially separable; expect high accuracy.
  EXPECT_GT(result.confusion.accuracy(), 0.85);
  EXPECT_EQ(result.scores.size(), trainer.split().test.size());
  EXPECT_GT(result.seconds_per_sample, 0.0);
}

TEST(Trainer, PairBatchModeAlsoTrains) {
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  mc.seed = 5;
  gnn::Hw2Vec model(mc);
  const PairDataset ds = PairDataset::all_pairs(toy_entries(2, 5));
  TrainConfig tc;
  tc.epochs = 1;
  tc.mode = TrainConfig::BatchMode::kPairBatch;
  tc.batch_pairs = 16;
  tc.max_steps_per_epoch = 4;
  tc.seed = 11;
  Trainer trainer(model, ds, tc);
  const EpochStats stats = trainer.train_epoch();
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.pairs_seen, 0u);
}

TEST(Trainer, EmbedAllIdenticalAcross1And2And8Workers) {
  // The parallel embed_all fan-out must never change the embeddings:
  // same model, same graphs, any worker count -> bit-identical rows.
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 4));
  std::vector<std::vector<tensor::Matrix>> per_count;
  for (std::size_t threads : {1u, 2u, 8u}) {
    gnn::Hw2VecConfig mc;
    mc.hidden_dim = 8;
    mc.seed = 21;
    gnn::Hw2Vec model(mc);
    TrainConfig tc;
    tc.seed = 22;
    tc.num_threads = threads;
    Trainer trainer(model, ds, tc);
    per_count.push_back(trainer.embed_all());
  }
  ASSERT_EQ(per_count.size(), 3u);
  ASSERT_EQ(per_count[0].size(), ds.graphs().size());
  for (std::size_t g = 0; g < per_count[0].size(); ++g) {
    EXPECT_EQ(tensor::max_abs_diff(per_count[0][g], per_count[1][g]), 0.0F);
    EXPECT_EQ(tensor::max_abs_diff(per_count[0][g], per_count[2][g]), 0.0F);
  }
}

TEST(Trainer, ParallelStepGradientMatchesTapeBuiltLoss) {
  // The closed-form cosine/Eq. 7 gradient inside the parallel step must
  // mirror the tape-built cosine_similarity + cosine_embedding_loss
  // backward bit-for-bit: run one single-pair SGD step through the
  // trainer and compare against a manually differentiated reference
  // update on an identically-initialized model.
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  mc.dropout = 0.0F;  // keeps the two paths' forwards identical
  mc.seed = 41;
  const PairDataset ds = PairDataset::all_pairs(toy_entries(1, 2));
  ASSERT_EQ(ds.pairs().size(), 1u);

  TrainConfig tc;
  tc.mode = TrainConfig::BatchMode::kGraphBatch;
  tc.batch_graphs = 2;
  tc.max_steps_per_epoch = 1;
  tc.optimizer = OptimizerKind::kSgd;
  tc.learning_rate = 1e-2F;
  tc.test_fraction = 0.0;
  tc.seed = 42;
  gnn::Hw2Vec trained(mc);
  Trainer trainer(trained, ds, tc);
  const EpochStats stats = trainer.train_epoch();
  ASSERT_EQ(stats.steps, 1u);
  ASSERT_EQ(stats.pairs_seen, 1u);

  gnn::Hw2Vec reference(mc);
  tensor::Tape tape;
  util::Rng unused(0);
  tensor::Var ha =
      reference.embed(tape, ds.graphs()[0].tensors, unused, true);
  tensor::Var hb =
      reference.embed(tape, ds.graphs()[1].tensors, unused, true);
  tensor::Var sim = tape.cosine_similarity(ha, hb);
  tensor::Var loss =
      tape.cosine_embedding_loss(sim, ds.pairs()[0].label, tc.margin);
  tensor::Var mean = tape.scale(loss, 1.0F);  // one pair in the batch
  tape.backward(mean);
  for (tensor::Parameter* p : reference.parameters()) {
    p->value.axpy_in_place(-tc.learning_rate, p->grad);
    p->zero_grad();
  }

  const auto got = trained.parameters();
  const auto want = reference.parameters();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(got[i]->value, want[i]->value), 0.0F)
        << "parameter " << i;
  }
}

/// Run fit() epoch by epoch with a pinned worker count; returns the loss
/// curve and leaves the trained parameters in `params_out`.
std::vector<double> loss_curve_for_threads(
    std::size_t threads, TrainConfig::BatchMode mode, int epochs,
    std::vector<tensor::Matrix>& params_out) {
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  mc.seed = 31;
  gnn::Hw2Vec model(mc);
  const PairDataset ds = PairDataset::all_pairs(toy_entries(3, 5));
  TrainConfig tc;
  tc.mode = mode;
  tc.batch_graphs = 8;
  tc.batch_pairs = 12;
  tc.max_steps_per_epoch = 4;
  tc.learning_rate = 5e-3F;
  tc.seed = 32;
  tc.num_threads = threads;
  Trainer trainer(model, ds, tc);
  std::vector<double> curve;
  curve.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) {
    curve.push_back(trainer.train_epoch().mean_loss);
  }
  params_out.clear();
  for (tensor::Parameter* p : model.parameters()) {
    params_out.push_back(p->value);
  }
  return curve;
}

TEST(Trainer, FitBitIdenticalAcross1And2And8Workers) {
  // The whole training trajectory — per-epoch mean losses and the final
  // weights — must be byte-equal for any worker count, in both batch
  // modes: per-graph tapes accumulate into shadow sinks that are folded
  // in fixed graph order, so the arithmetic never depends on the
  // schedule.
  for (const auto mode : {TrainConfig::BatchMode::kGraphBatch,
                          TrainConfig::BatchMode::kPairBatch}) {
    std::vector<std::vector<double>> curves;
    std::vector<std::vector<tensor::Matrix>> params;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      std::vector<tensor::Matrix> trained;
      curves.push_back(loss_curve_for_threads(threads, mode, 6, trained));
      params.push_back(std::move(trained));
    }
    ASSERT_EQ(curves.size(), 3u);
    for (std::size_t v = 1; v < curves.size(); ++v) {
      ASSERT_EQ(curves[v].size(), curves[0].size());
      for (std::size_t e = 0; e < curves[0].size(); ++e) {
        EXPECT_EQ(curves[0][e], curves[v][e])
            << "loss diverged at epoch " << e << " with variant " << v;
      }
      ASSERT_EQ(params[v].size(), params[0].size());
      for (std::size_t p = 0; p < params[0].size(); ++p) {
        EXPECT_EQ(tensor::max_abs_diff(params[0][p], params[v][p]), 0.0F)
            << "parameter " << p << " diverged with variant " << v;
      }
    }
    // Sanity: six epochs of training actually moved the loss.
    EXPECT_NE(curves[0].front(), curves[0].back());
  }
}

TEST(Trainer, ScorePairsMatchesEvaluateScores) {
  gnn::Hw2VecConfig mc;
  mc.hidden_dim = 8;
  gnn::Hw2Vec model(mc);
  const PairDataset ds = PairDataset::all_pairs(toy_entries(2, 4));
  TrainConfig tc;
  tc.epochs = 2;
  tc.seed = 12;
  Trainer trainer(model, ds, tc);
  trainer.fit();
  const EvalResult result = trainer.evaluate();
  const std::vector<float> scores = trainer.score_pairs(trainer.split().test);
  ASSERT_EQ(scores.size(), result.scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(scores[i], result.scores[i], 1e-5F);
  }
}

}  // namespace
}  // namespace gnn4ip::train
