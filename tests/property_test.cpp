// Property-based suites: invariants that must hold across the whole
// corpus, swept with parameterized gtest.
//
//  * DFG structural invariants for every RTL family × style × seed
//  * featurization invariants (one-hot rows, symmetric normalized
//    adjacency row mass, Eq. 5 spectral bounds)
//  * obfuscation behavior preservation across configurations
//  * embedding determinism and readout bounds across the corpus
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/corpus.h"
#include "data/obfuscate.h"
#include "data/rtl_designs.h"
#include "dfg/node_kind.h"
#include "dfg/pipeline.h"
#include "gnn/featurize.h"
#include "gnn/hw2vec.h"
#include "graph/algorithms.h"

namespace gnn4ip {
namespace {

// ---------------------------------------------------------------------------
// DFG invariants over the full RTL corpus.
// ---------------------------------------------------------------------------

struct DfgCase {
  std::string family;
  data::RtlVariant variant;
};

std::vector<DfgCase> all_dfg_cases() {
  std::vector<DfgCase> cases;
  for (const data::RtlFamily& family : data::rtl_families()) {
    for (int style = 0; style < family.num_styles; ++style) {
      for (std::uint64_t seed : {11ULL, 22ULL}) {
        cases.push_back({family.name, {style, seed}});
      }
    }
  }
  return cases;
}

class DfgInvariantTest : public ::testing::TestWithParam<DfgCase> {};

TEST_P(DfgInvariantTest, StructuralInvariants) {
  const DfgCase& c = GetParam();
  const graph::Digraph g =
      dfg::extract_dfg(data::generate_rtl(c.family, c.variant));

  // 1. Non-trivial and fully connected after trim.
  ASSERT_GT(g.num_nodes(), 4u);
  EXPECT_EQ(graph::num_weak_components(g), 1) << c.family;

  // 2. Every output is driven. (Outputs are the DFG's roots in the
  //    paper's sense, but they may still be read back: register feedback
  //    `q <= f(q)` and output reuse `assign odd = ~even` are legal — a
  //    pure-LFSR design's only output is its own feedback register.)
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto id = static_cast<graph::NodeId>(v);
    const auto kind = static_cast<dfg::NodeKind>(g.node(id).kind);
    if (kind == dfg::NodeKind::kOutput) {
      EXPECT_GT(g.out_degree(id), 0u) << c.family << " output undriven";
    }
    if (kind == dfg::NodeKind::kInput ||
        kind == dfg::NodeKind::kConstant) {
      EXPECT_EQ(g.out_degree(id), 0u) << c.family << " " << g.node(id).name;
    }
    // 3. Every operator node has at least one operand.
    if (dfg::is_operator_kind(kind)) {
      EXPECT_GT(g.out_degree(id), 0u)
          << c.family << " operator " << g.node(id).name;
    }
    // 4. All kinds are inside the vocabulary.
    EXPECT_GE(g.node(id).kind, 0);
    EXPECT_LT(g.node(id).kind, dfg::kNodeKindCount);
  }

  // 5. Every node is backward-reachable from some output (trim's
  //    component rule guarantees component-level connectivity; this is
  //    the stronger per-node check for the forward cone).
  std::vector<graph::NodeId> outputs;
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const auto id = static_cast<graph::NodeId>(v);
    if (g.node(id).kind == static_cast<int>(dfg::NodeKind::kOutput)) {
      outputs.push_back(id);
    }
  }
  ASSERT_FALSE(outputs.empty()) << c.family;

  // 6. Determinism: regenerating the same variant yields the same graph.
  const graph::Digraph g2 =
      dfg::extract_dfg(data::generate_rtl(c.family, c.variant));
  EXPECT_EQ(graph::structural_hash(g), graph::structural_hash(g2));
}

TEST_P(DfgInvariantTest, FeaturizationInvariants) {
  const DfgCase& c = GetParam();
  const graph::Digraph g =
      dfg::extract_dfg(data::generate_rtl(c.family, c.variant));
  const gnn::GraphTensors t = gnn::featurize(g);

  ASSERT_EQ(t.x.rows(), g.num_nodes());
  ASSERT_EQ(t.num_nodes, g.num_nodes());
  // One-hot rows.
  for (std::size_t r = 0; r < t.x.rows(); ++r) {
    float sum = 0.0F;
    float max = 0.0F;
    for (float v : t.x.row(r)) {
      sum += v;
      max = std::max(max, v);
    }
    EXPECT_FLOAT_EQ(sum, 1.0F);
    EXPECT_FLOAT_EQ(max, 1.0F);
  }
  // Normalized adjacency: all entries in (0, 1], diagonal present, and
  // row mass ≤ sqrt(deg) bound — loosely, every row must be nonzero and
  // finite.
  const tensor::Matrix dense = t.adj->to_dense();
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    float row_sum = 0.0F;
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const float v = dense.at(i, j);
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0F);
      EXPECT_LE(v, 1.0F + 1e-6F);
      row_sum += v;
    }
    EXPECT_GT(dense.at(i, i), 0.0F);  // self loop from Â = A + I
    EXPECT_GT(row_sum, 0.0F);
  }
  // Edges dedup'd, self-loop-free, in range.
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& e : t.edges) {
    EXPECT_NE(e.first, e.second);
    EXPECT_LT(e.first, t.num_nodes);
    EXPECT_LT(e.second, t.num_nodes);
    EXPECT_TRUE(seen.insert(e).second) << "duplicate edge";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DfgInvariantTest, ::testing::ValuesIn(all_dfg_cases()),
    [](const ::testing::TestParamInfo<DfgCase>& param_info) {
      return param_info.param.family + "_s" +
             std::to_string(param_info.param.variant.style) + "_r" +
             std::to_string(param_info.param.variant.seed);
    });

// ---------------------------------------------------------------------------
// Obfuscation behavior preservation, swept over configurations.
// ---------------------------------------------------------------------------

struct ObfCase {
  std::string name;
  data::ObfuscationConfig config;
};

std::vector<ObfCase> obf_cases() {
  std::vector<ObfCase> cases;
  {
    data::ObfuscationConfig c;
    c.inverter_pair_rate = 0.3;
    c.buffer_rate = 0.0;
    c.decompose_rate = 0.0;
    c.dummy_gates = 0;
    cases.push_back({"inverter_pairs_only", c});
  }
  {
    data::ObfuscationConfig c;
    c.inverter_pair_rate = 0.0;
    c.buffer_rate = 0.3;
    c.decompose_rate = 0.0;
    c.dummy_gates = 0;
    cases.push_back({"buffers_only", c});
  }
  {
    data::ObfuscationConfig c;
    c.inverter_pair_rate = 0.0;
    c.buffer_rate = 0.0;
    c.decompose_rate = 1.0;
    c.dummy_gates = 0;
    cases.push_back({"full_decompose", c});
  }
  {
    data::ObfuscationConfig c;
    c.inverter_pair_rate = 0.0;
    c.buffer_rate = 0.0;
    c.decompose_rate = 0.0;
    c.dummy_gates = 24;
    cases.push_back({"dummy_logic_only", c});
  }
  {
    data::ObfuscationConfig c;  // defaults: everything on
    cases.push_back({"all_transforms", c});
  }
  return cases;
}

class ObfuscationPropertyTest : public ::testing::TestWithParam<ObfCase> {};

TEST_P(ObfuscationPropertyTest, PreservesAluBehavior) {
  const data::Netlist base = data::build_netlist_family("nl_alu4");
  util::Rng rng(41);
  const data::Netlist obf =
      data::obfuscate(base, GetParam().config, rng);
  util::Rng in_rng(42);
  for (int trial = 0; trial < 16; ++trial) {
    std::map<std::string, bool> in;
    data::set_bus(in, "a", 4, in_rng.next_below(16));
    data::set_bus(in, "b", 4, in_rng.next_below(16));
    in["s0"] = in_rng.flip(0.5);
    in["s1"] = in_rng.flip(0.5);
    EXPECT_EQ(data::get_bus(data::evaluate(base, in), "f", 4),
              data::get_bus(data::evaluate(obf, in), "f", 4))
        << GetParam().name << " trial " << trial;
  }
}

TEST_P(ObfuscationPropertyTest, PreservesParityBehavior) {
  const data::Netlist base = data::build_netlist_family("nl_parity16");
  util::Rng rng(43);
  const data::Netlist obf =
      data::obfuscate(base, GetParam().config, rng);
  util::Rng in_rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    std::map<std::string, bool> in;
    data::set_bus(in, "d", 16, in_rng.next_below(65536));
    const auto out_base = data::evaluate(base, in);
    const auto out_obf = data::evaluate(obf, in);
    EXPECT_EQ(out_base.at("even"), out_obf.at("even")) << GetParam().name;
    EXPECT_EQ(out_base.at("odd"), out_obf.at("odd")) << GetParam().name;
  }
}

TEST_P(ObfuscationPropertyTest, PortsUnchanged) {
  const data::Netlist base = data::build_netlist_family("nl_adder8");
  util::Rng rng(45);
  const data::Netlist obf =
      data::obfuscate(base, GetParam().config, rng);
  EXPECT_EQ(obf.inputs, base.inputs);
  EXPECT_EQ(obf.outputs, base.outputs);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ObfuscationPropertyTest, ::testing::ValuesIn(obf_cases()),
    [](const ::testing::TestParamInfo<ObfCase>& param_info) {
      return param_info.param.name;
    });

// ---------------------------------------------------------------------------
// Netlist family sweep: every structural family simulates, emits valid
// Verilog, and survives restructuring.
// ---------------------------------------------------------------------------

class NetlistFamilyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NetlistFamilyTest, EmitsParsesAndExtracts) {
  const data::Netlist base = data::build_netlist_family(GetParam());
  EXPECT_GT(base.num_gates(), 5u);
  const graph::Digraph g = dfg::extract_dfg(base.to_verilog());
  EXPECT_GT(g.num_nodes(), base.inputs.size() + base.outputs.size());
  EXPECT_EQ(graph::num_weak_components(g), 1) << GetParam();
}

TEST_P(NetlistFamilyTest, RestructurePreservesIo) {
  const data::Netlist base = data::build_netlist_family(GetParam());
  util::Rng rng(51);
  const data::Netlist re = data::restructure(base, rng);
  EXPECT_EQ(re.inputs, base.inputs);
  EXPECT_EQ(re.outputs, base.outputs);
  // Behavior on a few random vectors.
  util::Rng in_rng(52);
  for (int trial = 0; trial < 4; ++trial) {
    std::map<std::string, bool> in;
    for (const std::string& port : base.inputs) {
      in[port] = in_rng.flip(0.5);
    }
    const auto a = data::evaluate(base, in);
    const auto b = data::evaluate(re, in);
    for (const std::string& out : base.outputs) {
      EXPECT_EQ(a.at(out), b.at(out)) << GetParam() << " @" << out;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, NetlistFamilyTest,
                         ::testing::ValuesIn(data::netlist_family_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// ---------------------------------------------------------------------------
// Embedding properties across the corpus.
// ---------------------------------------------------------------------------

TEST(EmbeddingProperties, FiniteDeterministicAndSeedSensitive) {
  gnn::Hw2Vec model_a;
  gnn::Hw2Vec model_b;  // same seed -> same weights
  gnn::Hw2VecConfig other;
  other.seed = 99;
  gnn::Hw2Vec model_c(other);
  int distinct = 0;
  for (const data::RtlFamily& family : data::rtl_families()) {
    const gnn::GraphTensors t = gnn::featurize(
        dfg::extract_dfg(family.generate({0, 61})));
    const tensor::Matrix ha = model_a.embed_inference(t);
    const tensor::Matrix hb = model_b.embed_inference(t);
    const tensor::Matrix hc = model_c.embed_inference(t);
    for (float v : ha.data()) EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(tensor::max_abs_diff(ha, hb), 1e-7F) << family.name;
    if (tensor::max_abs_diff(ha, hc) > 1e-6F) ++distinct;
  }
  // A different init seed must actually change embeddings.
  EXPECT_GT(distinct, static_cast<int>(data::rtl_families().size()) / 2);
}

TEST(EmbeddingProperties, EmbeddingInvariantToSignalRenaming) {
  // hw2vec featurizes node *kinds*, so a pure renaming cannot change the
  // embedding — the property behind robustness to renamed-wire piracy.
  const std::string a =
      "module m (input alpha, input beta, output gamma);\n"
      "  assign gamma = alpha ^ beta;\nendmodule\n";
  const std::string b =
      "module completely_different (input x9, input q_z, output out_w);\n"
      "  assign out_w = x9 ^ q_z;\nendmodule\n";
  gnn::Hw2Vec model;
  const tensor::Matrix ha =
      model.embed_inference(gnn::featurize(dfg::extract_dfg(a)));
  const tensor::Matrix hb =
      model.embed_inference(gnn::featurize(dfg::extract_dfg(b)));
  EXPECT_LT(tensor::max_abs_diff(ha, hb), 1e-6F);
}

TEST(EmbeddingProperties, PoolRatioOneMatchesNoPoolNodeCount) {
  gnn::Hw2VecConfig config;
  config.pool_ratio = 1.0F;
  gnn::Hw2Vec model(config);
  const gnn::GraphTensors t = gnn::featurize(
      dfg::extract_dfg(data::gen_adder({0, 71})));
  // With ratio 1 nothing is filtered; embedding still finite and sized.
  const tensor::Matrix h = model.embed_inference(t);
  EXPECT_EQ(h.cols(), config.hidden_dim);
}

}  // namespace
}  // namespace gnn4ip
