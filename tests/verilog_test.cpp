// Verilog frontend tests: preprocessor, lexer, parser, elaboration.
#include <gtest/gtest.h>

#include <string>

#include "verilog/elaborate.h"
#include "verilog/parser.h"
#include "verilog/preprocess.h"
#include "verilog/token.h"

namespace gnn4ip::verilog {
namespace {

// --- preprocessor ----------------------------------------------------------

TEST(Preprocess, StripsLineComments) {
  EXPECT_EQ(preprocess("wire a; // comment\nwire b;"),
            "wire a; \nwire b;");
}

TEST(Preprocess, StripsBlockCommentsKeepingLines) {
  const std::string out = preprocess("a /* x\ny */ b");
  EXPECT_EQ(out, "a \n b");
}

TEST(Preprocess, ExpandsObjectMacros) {
  EXPECT_EQ(preprocess("`define W 8\nwire [`W-1:0] x;"),
            "\nwire [8-1:0] x;");
}

TEST(Preprocess, IfdefElseEndif) {
  const std::string src =
      "`define FAST\n`ifdef FAST\nwire f;\n`else\nwire s;\n`endif\n";
  const std::string out = preprocess(src);
  EXPECT_NE(out.find("wire f;"), std::string::npos);
  EXPECT_EQ(out.find("wire s;"), std::string::npos);
}

TEST(Preprocess, IfndefTakesElseBranchWhenDefined) {
  const std::string src =
      "`define X\n`ifndef X\nwire a;\n`else\nwire b;\n`endif\n";
  const std::string out = preprocess(src);
  EXPECT_EQ(out.find("wire a;"), std::string::npos);
  EXPECT_NE(out.find("wire b;"), std::string::npos);
}

TEST(Preprocess, IncludeResolvesThroughCallback) {
  PreprocessOptions opts;
  opts.resolver = [](const std::string& path) -> std::optional<std::string> {
    if (path == "defs.vh") return std::string("wire from_include;");
    return std::nullopt;
  };
  const std::string out = preprocess("`include \"defs.vh\"\nwire x;", opts);
  EXPECT_NE(out.find("from_include"), std::string::npos);
}

TEST(Preprocess, UnknownIncludeThrows) {
  EXPECT_THROW(preprocess("`include \"nope.vh\"\n"), ParseError);
}

TEST(Preprocess, UnterminatedIfdefThrows) {
  EXPECT_THROW(preprocess("`ifdef FOO\nwire a;\n"), ParseError);
}

TEST(Preprocess, UndefRemovesMacro) {
  EXPECT_THROW(preprocess("`define A 1\n`undef A\nwire [`A:0] x;"),
               ParseError);
}

TEST(Preprocess, TimescaleDirectiveIgnored) {
  const std::string out = preprocess("`timescale 1ns/1ps\nwire a;");
  EXPECT_NE(out.find("wire a;"), std::string::npos);
  EXPECT_EQ(out.find("timescale"), std::string::npos);
}

TEST(Preprocess, MacroInsideDisabledRegionNotDefined) {
  const std::string src =
      "`ifdef NOPE\n`define HIDDEN 1\n`endif\nwire x;";
  EXPECT_NO_THROW(preprocess(src));
  EXPECT_THROW(preprocess(src + "\n`HIDDEN"), ParseError);
}

// --- lexer -------------------------------------------------------------------

TEST(Lexer, TokenizesIdentifiersAndKeywords) {
  const auto tokens = lex("module foo endmodule");
  ASSERT_EQ(tokens.size(), 4u);  // + EOF
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[3].kind, TokenKind::kEndOfFile);
}

TEST(Lexer, TokenizesSizedNumbers) {
  const auto tokens = lex("8'hFF 4'b10_10 12 3'sd2 'b0");
  EXPECT_EQ(tokens[0].text, "8'hFF");
  EXPECT_EQ(tokens[1].text, "4'b10_10");
  EXPECT_EQ(tokens[2].text, "12");
  EXPECT_EQ(tokens[3].text, "3'sd2");
  EXPECT_EQ(tokens[4].text, "'b0");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tokens[static_cast<std::size_t>(i)].kind, TokenKind::kNumber);
  }
}

TEST(Lexer, MultiCharOperatorsGreedy) {
  const auto tokens = lex("a <= b === c <<< 2 ** 3");
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[3].text, "===");
  EXPECT_EQ(tokens[5].text, "<<<");
  EXPECT_EQ(tokens[7].text, "**");
}

TEST(Lexer, TracksLineNumbers) {
  const auto tokens = lex("a\nb\n  c");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[2].loc.line, 3);
  EXPECT_EQ(tokens[2].loc.column, 3);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(lex("wire €;"), ParseError);
}

TEST(Lexer, SystemIdentifiers) {
  const auto tokens = lex("$display");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "$display");
}

// --- parser ------------------------------------------------------------------

TEST(Parser, ParsesAnsiModule) {
  const Design d = parse(
      "module m (input a, input b, output y);\n"
      "  assign y = a & b;\n"
      "endmodule\n");
  ASSERT_EQ(d.modules.size(), 1u);
  const Module& m = d.modules[0];
  EXPECT_EQ(m.name, "m");
  ASSERT_EQ(m.port_order.size(), 3u);
  EXPECT_EQ(m.port_order[2], "y");
  ASSERT_EQ(m.assigns.size(), 1u);
  EXPECT_EQ(m.assigns[0].rhs->kind, ExprKind::kBinary);
}

TEST(Parser, ParsesNonAnsiModule) {
  const Design d = parse(
      "module m (a, b, y);\n"
      "  input a, b;\n"
      "  output reg y;\n"
      "  always @(a or b) y = a | b;\n"
      "endmodule\n");
  const Module& m = d.modules[0];
  const NetDecl* y = m.find_net("y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->type, NetType::kReg);
  ASSERT_TRUE(y->direction.has_value());
  EXPECT_EQ(*y->direction, PortDirection::kOutput);
  ASSERT_EQ(m.always_blocks.size(), 1u);
  EXPECT_EQ(m.always_blocks[0].sensitivity.size(), 2u);
}

TEST(Parser, ParsesPaperAdderExample) {
  // Adapted from Fig. 1 of the paper (lowercased keywords).
  const Design d = parse(
      "module ADDER(\n"
      "  input Num1,\n  input Num2,\n  input Cin,\n"
      "  output reg Sum,\n  output reg Cout );\n"
      "always @(Num1, Num2, Cin) begin\n"
      "  Sum <= ((Num1 ^ Num2) ^ Cin);\n"
      "  Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));\n"
      "end\n"
      "endmodule\n");
  const Module& m = d.modules[0];
  EXPECT_EQ(m.name, "ADDER");
  ASSERT_EQ(m.always_blocks.size(), 1u);
  const Stmt& body = *m.always_blocks[0].body;
  ASSERT_EQ(body.kind, StmtKind::kBlock);
  ASSERT_EQ(body.children.size(), 2u);
  EXPECT_EQ(body.children[0]->kind, StmtKind::kNonblockingAssign);
}

TEST(Parser, ParsesGatePrimitives) {
  const Design d = parse(
      "module g (a, b, y);\n"
      "  input a, b;\n  output y;\n"
      "  wire t1, t2;\n"
      "  xor (t1, a, b);\n"
      "  and g1 (t2, a, b);\n"
      "  or (y, t1, t2);\n"
      "endmodule\n");
  const Module& m = d.modules[0];
  ASSERT_EQ(m.gates.size(), 3u);
  EXPECT_EQ(m.gates[0].gate_type, "xor");
  EXPECT_EQ(m.gates[1].instance_name, "g1");
  EXPECT_EQ(m.gates[1].terminals.size(), 3u);
}

TEST(Parser, ParsesModuleInstantiationNamed) {
  const Design d = parse(
      "module child (input x, output y);\n  assign y = ~x;\nendmodule\n"
      "module top (input a, output b);\n"
      "  child u1 (.x(a), .y(b));\n"
      "endmodule\n");
  const Module* top = d.find_module("top");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->instances.size(), 1u);
  EXPECT_EQ(top->instances[0].module_name, "child");
  EXPECT_EQ(top->instances[0].connections[0].port_name, "x");
}

TEST(Parser, ParsesParametersAndOverrides) {
  const Design d = parse(
      "module child;\n  parameter W = 4;\n  wire [W-1:0] x;\nendmodule\n"
      "module top;\n  child #(.W(8)) u1 ();\nendmodule\n");
  const Module* top = d.find_module("top");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->instances[0].parameter_overrides.size(), 1u);
  EXPECT_EQ(top->instances[0].parameter_overrides[0].port_name, "W");
}

TEST(Parser, ParsesCaseStatement) {
  const Design d = parse(
      "module c (input [1:0] s, output reg y);\n"
      "  always @(*) begin\n"
      "    case (s)\n"
      "      2'b00, 2'b01: y = 1'b0;\n"
      "      2'b10: y = 1'b1;\n"
      "      default: y = 1'b0;\n"
      "    endcase\n"
      "  end\n"
      "endmodule\n");
  const Stmt& body = *d.modules[0].always_blocks[0].body;
  ASSERT_EQ(body.kind, StmtKind::kBlock);
  const Stmt& case_stmt = *body.children[0];
  ASSERT_EQ(case_stmt.kind, StmtKind::kCase);
  ASSERT_EQ(case_stmt.case_items.size(), 3u);
  EXPECT_EQ(case_stmt.case_items[0].labels.size(), 2u);
  EXPECT_TRUE(case_stmt.case_items[2].labels.empty());  // default
}

TEST(Parser, ParsesTernaryConcatRepeatSelect) {
  const Design d = parse(
      "module e (input [7:0] a, input s, output [7:0] y, output [3:0] z);\n"
      "  assign y = s ? {a[3:0], a[7:4]} : {2{a[1:0], a[0], a[1]}};\n"
      "  assign z = a[5:2];\n"
      "endmodule\n");
  EXPECT_EQ(d.modules[0].assigns.size(), 2u);
}

TEST(Parser, RejectsUnsupportedConstructs) {
  EXPECT_THROW(parse("module m;\n  generate\nendmodule\n"), ParseError);
  EXPECT_THROW(
      parse("module m (input c, output reg q);\n"
            "  always @(c) for (;;) q = 1;\nendmodule\n"),
      ParseError);
}

TEST(Parser, ReportsErrorLocation) {
  try {
    (void)parse("module m;\n  assign = 1;\nendmodule\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.location().line, 2);
  }
}

TEST(Parser, ParsesSensitivityEdges) {
  const Design d = parse(
      "module f (input clk, input rst, output reg q);\n"
      "  always @(posedge clk or negedge rst) q <= ~q;\n"
      "endmodule\n");
  const AlwaysBlock& ab = d.modules[0].always_blocks[0];
  ASSERT_EQ(ab.sensitivity.size(), 2u);
  EXPECT_EQ(ab.sensitivity[0].edge, EdgeKind::kPosedge);
  EXPECT_EQ(ab.sensitivity[1].edge, EdgeKind::kNegedge);
}

TEST(Parser, SkipsSystemTasksAndDelays) {
  const Design d = parse(
      "module t (input clk, output reg q);\n"
      "  always @(posedge clk) begin\n"
      "    #1 q <= 1'b1;\n"
      "    $display(\"hello\", q);\n"
      "  end\n"
      "endmodule\n");
  const Stmt& body = *d.modules[0].always_blocks[0].body;
  ASSERT_EQ(body.children.size(), 2u);
  EXPECT_EQ(body.children[1]->kind, StmtKind::kNull);
}

TEST(Parser, WireWithInitBecomesAssign) {
  const Design d = parse(
      "module w (input a, output y);\n"
      "  wire t = ~a;\n"
      "  assign y = t;\n"
      "endmodule\n");
  const Module& m = d.modules[0];
  const NetDecl* t = m.find_net("t");
  ASSERT_NE(t, nullptr);
  ASSERT_NE(t->init, nullptr);
}

// --- constant folding ---------------------------------------------------------

TEST(ConstFold, FoldsArithmetic) {
  const Design d = parse(
      "module m;\n  parameter A = 3 + 4 * 2;\nendmodule\n");
  const auto value = fold_constant(*d.modules[0].params[0].value);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 11);
}

TEST(ConstFold, FoldsBasedLiterals) {
  Expr e;
  e.kind = ExprKind::kNumber;
  e.text = "8'hFF";
  EXPECT_EQ(fold_constant(e).value_or(-1), 255);
  e.text = "4'b1010";
  EXPECT_EQ(fold_constant(e).value_or(-1), 10);
  e.text = "8'hxz";
  EXPECT_FALSE(fold_constant(e).has_value());
}

TEST(ConstFold, UsesEnvironment) {
  Expr e;
  e.kind = ExprKind::kIdentifier;
  e.text = "W";
  EXPECT_EQ(fold_constant(e, {{"W", 16}}).value_or(-1), 16);
  EXPECT_FALSE(fold_constant(e).has_value());
}

// --- elaboration -----------------------------------------------------------------

TEST(Elaborate, FlattensHierarchy) {
  const Design d = parse(
      "module inv (input x, output y);\n  assign y = ~x;\nendmodule\n"
      "module top (input a, output b);\n"
      "  wire mid;\n"
      "  inv u1 (.x(a), .y(mid));\n"
      "  inv u2 (.x(mid), .y(b));\n"
      "endmodule\n");
  const Module flat = elaborate(d, "top");
  EXPECT_TRUE(flat.instances.empty());
  // Two port-connection assigns per instance + one body assign each.
  EXPECT_EQ(flat.assigns.size(), 6u);
  EXPECT_NE(flat.find_net("u1.y"), nullptr);
  EXPECT_NE(flat.find_net("u2.x"), nullptr);
}

TEST(Elaborate, ResolvesParameters) {
  const Design d = parse(
      "module child (input [7:0] x, output [7:0] y);\n"
      "  parameter K = 1;\n"
      "  assign y = x + K;\n"
      "endmodule\n"
      "module top (input [7:0] a, output [7:0] b);\n"
      "  child #(.K(5)) u1 (.x(a), .y(b));\n"
      "endmodule\n");
  const Module flat = elaborate(d, "top");
  bool found_const_5 = false;
  for (const ContinuousAssign& ca : flat.assigns) {
    const std::string text = to_verilog(*ca.rhs);
    if (text.find('5') != std::string::npos) found_const_5 = true;
  }
  EXPECT_TRUE(found_const_5);
}

TEST(Elaborate, PositionalConnections) {
  const Design d = parse(
      "module buf2 (input x, output y);\n  assign y = x;\nendmodule\n"
      "module top (input a, output b);\n  buf2 u (a, b);\nendmodule\n");
  const Module flat = elaborate(d, "top");
  EXPECT_TRUE(flat.instances.empty());
  EXPECT_NE(flat.find_net("u.x"), nullptr);
}

TEST(Elaborate, DetectsRecursion) {
  const Design d = parse(
      "module a (input x, output y);\n  a u (.x(x), .y(y));\nendmodule\n");
  EXPECT_THROW(elaborate(d, "a"), ParseError);
}

TEST(Elaborate, InferTopModule) {
  const Design d = parse(
      "module leaf (input x, output y);\n  assign y = x;\nendmodule\n"
      "module root (input a, output b);\n"
      "  leaf u (.x(a), .y(b));\nendmodule\n");
  EXPECT_EQ(infer_top_module(d), "root");
}

TEST(Elaborate, UnknownModuleThrows) {
  const Design d = parse(
      "module top;\n  ghost u ();\nendmodule\n");
  EXPECT_THROW(elaborate(d, "top"), ParseError);
}

TEST(Elaborate, InoutUnsupported) {
  const Design d = parse(
      "module pad (inout p);\nendmodule\n"
      "module top (input a);\n  wire w;\n  pad u (.p(w));\nendmodule\n");
  EXPECT_THROW(elaborate(d, "top"), ParseError);
}

}  // namespace
}  // namespace gnn4ip::verilog
