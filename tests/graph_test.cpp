// Digraph, algorithms, and serialization tests.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "graph/serialize.h"
#include "util/contract.h"

namespace gnn4ip::graph {
namespace {

Digraph chain(int n) {
  Digraph g;
  for (int i = 0; i < n; ++i) g.add_node("n" + std::to_string(i), i % 3);
  for (int i = 0; i + 1 < n; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return g;
}

TEST(Digraph, AddNodesAndEdges) {
  Digraph g;
  const NodeId a = g.add_node("a", 1);
  const NodeId b = g.add_node("b", 2);
  g.add_edge(a, b);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));
  EXPECT_EQ(g.out_degree(a), 1u);
  EXPECT_EQ(g.in_degree(b), 1u);
}

TEST(Digraph, DuplicateEdgesCollapsed) {
  Digraph g;
  const NodeId a = g.add_node("a", 0);
  const NodeId b = g.add_node("b", 0);
  g.add_edge(a, b);
  g.add_edge(a, b);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Digraph, SelfLoopControl) {
  Digraph g;
  const NodeId a = g.add_node("a", 0);
  g.add_edge(a, a, /*allow_self_loop=*/false);
  EXPECT_EQ(g.num_edges(), 0u);
  g.add_edge(a, a, /*allow_self_loop=*/true);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Digraph, InvalidIdThrows) {
  Digraph g;
  g.add_node("a", 0);
  EXPECT_THROW((void)g.node(5), util::ContractViolation);
  EXPECT_THROW(g.add_edge(0, 9), util::ContractViolation);
}

TEST(Digraph, RemoveNodesRemapsAndPreservesEdges) {
  Digraph g = chain(5);  // 0->1->2->3->4
  const auto remap = g.remove_nodes({1});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(remap[0], 0);
  EXPECT_EQ(remap[1], kInvalidNode);
  EXPECT_EQ(remap[2], 1);
  // Edge 0->1 and 1->2 removed with the node; 2->3->4 survive.
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Digraph, InducedSubgraph) {
  Digraph g = chain(4);
  const Digraph sub = g.induced_subgraph({1, 2});
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_EQ(sub.node(0).name, "n1");
}

TEST(Digraph, FindByName) {
  Digraph g = chain(3);
  EXPECT_EQ(g.find_by_name("n2"), 2);
  EXPECT_EQ(g.find_by_name("zz"), kInvalidNode);
}

TEST(Algorithms, WeaklyConnectedComponents) {
  Digraph g = chain(3);
  g.add_node("island", 0);
  const auto labels = weakly_connected_components(g);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(num_weak_components(g), 2);
}

TEST(Algorithms, ReachableForwardAndBackward) {
  Digraph g = chain(4);
  const auto fwd = reachable(g, {1}, Direction::kForward);
  EXPECT_FALSE(fwd[0]);
  EXPECT_TRUE(fwd[1]);
  EXPECT_TRUE(fwd[3]);
  const auto bwd = reachable(g, {1}, Direction::kBackward);
  EXPECT_TRUE(bwd[0]);
  EXPECT_FALSE(bwd[2]);
}

TEST(Algorithms, CycleDetection) {
  Digraph g = chain(3);
  EXPECT_FALSE(has_cycle(g));
  g.add_edge(2, 0);
  EXPECT_TRUE(has_cycle(g));
}

TEST(Algorithms, SelfLoopIsCycle) {
  Digraph g;
  const NodeId a = g.add_node("a", 0);
  g.add_edge(a, a);
  EXPECT_TRUE(has_cycle(g));
}

TEST(Algorithms, TopologicalOrder) {
  Digraph g;
  const NodeId a = g.add_node("a", 0);
  const NodeId b = g.add_node("b", 0);
  const NodeId c = g.add_node("c", 0);
  g.add_edge(a, c);
  g.add_edge(b, c);
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 3u);
  // c must come after both a and b.
  std::size_t pos_a = 0;
  std::size_t pos_b = 0;
  std::size_t pos_c = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == a) pos_a = i;
    if (order[i] == b) pos_b = i;
    if (order[i] == c) pos_c = i;
  }
  EXPECT_GT(pos_c, pos_a);
  EXPECT_GT(pos_c, pos_b);
}

TEST(Algorithms, TopologicalOrderThrowsOnCycle) {
  Digraph g = chain(2);
  g.add_edge(1, 0);
  EXPECT_THROW(topological_order(g), util::ContractViolation);
}

TEST(Algorithms, StructuralHashInvariantToNames) {
  Digraph g1;
  g1.add_node("x", 1);
  g1.add_node("y", 2);
  g1.add_edge(0, 1);
  Digraph g2;
  g2.add_node("completely", 1);
  g2.add_node("different", 2);
  g2.add_edge(0, 1);
  EXPECT_EQ(structural_hash(g1), structural_hash(g2));
}

TEST(Algorithms, StructuralHashSensitiveToKindsAndWiring) {
  Digraph g1;
  g1.add_node("a", 1);
  g1.add_node("b", 2);
  g1.add_edge(0, 1);
  Digraph g2;
  g2.add_node("a", 1);
  g2.add_node("b", 3);  // different kind
  g2.add_edge(0, 1);
  EXPECT_NE(structural_hash(g1), structural_hash(g2));

  Digraph g3;
  g3.add_node("a", 1);
  g3.add_node("b", 2);
  g3.add_edge(1, 0);  // reversed edge
  EXPECT_NE(structural_hash(g1), structural_hash(g3));
}

TEST(Algorithms, StructuralHashInvariantToNodeOrder) {
  Digraph g1;
  g1.add_node("a", 1);
  g1.add_node("b", 2);
  g1.add_node("c", 3);
  g1.add_edge(0, 1);
  g1.add_edge(1, 2);
  Digraph g2;
  g2.add_node("c", 3);
  g2.add_node("a", 1);
  g2.add_node("b", 2);
  g2.add_edge(1, 2);
  g2.add_edge(2, 0);
  EXPECT_EQ(structural_hash(g1), structural_hash(g2));
}

TEST(Algorithms, KindHistogram) {
  Digraph g = chain(5);  // kinds 0,1,2,0,1
  const auto hist = kind_histogram(g);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 2);
  EXPECT_EQ(hist[1], 2);
  EXPECT_EQ(hist[2], 1);
}

TEST(Serialize, DotOutputContainsNodesAndEdges) {
  Digraph g = chain(2);
  const std::string dot = to_dot(g, "test");
  EXPECT_NE(dot.find("digraph test"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label="), std::string::npos);
}

TEST(Serialize, DotEscapesQuotes) {
  Digraph g;
  g.add_node("a\"b", 0);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
}

TEST(Serialize, TextRoundTrip) {
  Digraph g = chain(4);
  g.add_edge(0, 3);
  std::ostringstream os;
  write_text(os, g);
  std::istringstream is(os.str());
  const Digraph g2 = read_text(is);
  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.node(3).name, "n3");
  EXPECT_TRUE(g2.has_edge(0, 3));
  EXPECT_EQ(structural_hash(g), structural_hash(g2));
}

TEST(Serialize, RejectsMalformedStream) {
  std::istringstream bad1("not a graph");
  EXPECT_THROW(read_text(bad1), std::runtime_error);
  std::istringstream bad2("gnn4ip-graph v1\nnodes 1\n0 a\nedges 1\n0 9\n");
  EXPECT_THROW(read_text(bad2), std::runtime_error);
}

TEST(Serialize, NodeNamesWithSpacesSurvive) {
  Digraph g;
  g.add_node("name with spaces", 7);
  std::ostringstream os;
  write_text(os, g);
  std::istringstream is(os.str());
  const Digraph g2 = read_text(is);
  EXPECT_EQ(g2.node(0).name, "name with spaces");
  EXPECT_EQ(g2.node(0).kind, 7);
}

}  // namespace
}  // namespace gnn4ip::graph
