// Autograd tape tests: every operator's analytic gradient is verified
// against central finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "tensor/tape.h"
#include "util/contract.h"
#include "util/rng.h"

namespace gnn4ip::tensor {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng,
                     float lo = -1.0F, float hi = 1.0F) {
  Matrix m(r, c);
  for (float& x : m.data()) x = rng.uniform(lo, hi);
  return m;
}

/// Central finite-difference check: |analytic − numeric| must stay below
/// `tol` elementwise for parameter `p` of a scalar-valued function.
void check_gradient(Parameter& p,
                    const std::function<float()>& scalar_forward,
                    const Matrix& analytic, float tol = 2e-2F,
                    float eps = 1e-2F) {
  for (std::size_t r = 0; r < p.value.rows(); ++r) {
    for (std::size_t c = 0; c < p.value.cols(); ++c) {
      const float saved = p.value.at(r, c);
      p.value.at(r, c) = saved + eps;
      const float up = scalar_forward();
      p.value.at(r, c) = saved - eps;
      const float down = scalar_forward();
      p.value.at(r, c) = saved;
      const float numeric = (up - down) / (2.0F * eps);
      EXPECT_NEAR(analytic.at(r, c), numeric, tol)
          << "at (" << r << "," << c << ")";
    }
  }
}

TEST(Tape, ConstantHasNoGradient) {
  Tape tape;
  Var c = tape.constant(Matrix::from_rows({{1, 2}}));
  EXPECT_EQ(c.value().at(0, 1), 2.0F);
  EXPECT_TRUE(c.grad().empty());
}

TEST(Tape, ParameterAccumulatesIntoGrad) {
  Parameter p(Matrix::from_rows({{1.0F, 2.0F}}));
  const Matrix target = Matrix::from_rows({{0.0F, 1.0F}});
  // Two backward passes accumulate into p.grad until zero_grad().
  Matrix first_grad;
  for (int pass = 0; pass < 2; ++pass) {
    Tape tape;
    Var v = tape.parameter(p);
    Var sim = tape.cosine_similarity(v, tape.constant(target));
    tape.backward(sim);
    if (pass == 0) first_grad = p.grad;
  }
  EXPECT_LT(max_abs_diff(p.grad, add(first_grad, first_grad)), 1e-6F);
  p.zero_grad();
  EXPECT_FLOAT_EQ(p.grad.max_abs(), 0.0F);
}

TEST(Tape, MatmulGradient) {
  util::Rng rng(1);
  Parameter a(random_matrix(3, 4, rng));
  Parameter b(random_matrix(4, 2, rng));
  const Matrix target = random_matrix(1, 2, rng);

  auto forward = [&]() {
    Tape tape;
    Var va = tape.parameter(a);
    Var vb = tape.parameter(b);
    Var prod = tape.matmul(va, vb);
    Var pooled = tape.readout_sum(prod);
    Var t = tape.constant(target);
    return tape.cosine_similarity(pooled, t).value().at(0, 0);
  };
  // Analytic gradients.
  {
    Tape tape;
    Var va = tape.parameter(a);
    Var vb = tape.parameter(b);
    Var prod = tape.matmul(va, vb);
    Var pooled = tape.readout_sum(prod);
    Var t = tape.constant(target);
    Var sim = tape.cosine_similarity(pooled, t);
    tape.backward(sim);
  }
  check_gradient(a, forward, a.grad);
  const Matrix saved_b_grad = b.grad;
  a.zero_grad();
  b.zero_grad();
  check_gradient(b, forward, saved_b_grad);
}

TEST(Tape, SpmmGradientMatchesDenseMatmul) {
  util::Rng rng(2);
  auto sparse = std::make_shared<Csr>(Csr::from_triplets(
      3, 3,
      {{0, 0, 0.5F}, {0, 1, 0.5F}, {1, 1, 1.0F}, {2, 0, 0.3F}, {2, 2, 0.7F}}));
  Parameter x(random_matrix(3, 2, rng));

  Tape tape;
  Var vx = tape.parameter(x);
  Var y = tape.spmm(sparse, vx);
  Var pooled = tape.readout_sum(y);
  const Matrix target = random_matrix(1, 2, rng);
  Var sim = tape.cosine_similarity(pooled, tape.constant(target));
  tape.backward(sim);
  const Matrix analytic = x.grad;
  x.zero_grad();

  auto forward = [&]() {
    Tape t2;
    Var v = t2.parameter(x);
    Var y2 = t2.spmm(sparse, v);
    Var pooled2 = t2.readout_sum(y2);
    return t2.cosine_similarity(pooled2, t2.constant(target))
        .value()
        .at(0, 0);
  };
  check_gradient(x, forward, analytic);
}

TEST(Tape, ReluGradientMasksNegative) {
  Parameter p(Matrix::from_rows({{-1.0F, 2.0F, 1.0F}}));
  Tape tape;
  Var v = tape.parameter(p);
  Var r = tape.relu(v);
  // Target chosen so the cosine gradient is nonzero on surviving lanes.
  Var target = tape.constant(Matrix::from_rows({{1.0F, 1.0F, 0.0F}}));
  Var sim = tape.cosine_similarity(r, target);
  tape.backward(sim);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 0.0F);  // negative input: no grad
  EXPECT_NE(p.grad.at(0, 1), 0.0F);
  EXPECT_NE(p.grad.at(0, 2), 0.0F);
}

TEST(Tape, TanhSigmoidGradients) {
  util::Rng rng(3);
  Parameter p(random_matrix(1, 4, rng));
  const Matrix target = random_matrix(1, 4, rng, 0.1F, 1.0F);
  auto forward = [&](bool use_tanh) {
    return [&, use_tanh]() {
      Tape tape;
      Var v = tape.parameter(p);
      Var act = use_tanh ? tape.tanh_op(v) : tape.sigmoid(v);
      return tape.cosine_similarity(act, tape.constant(target))
          .value()
          .at(0, 0);
    };
  };
  for (const bool use_tanh : {true, false}) {
    Tape tape;
    Var v = tape.parameter(p);
    Var act = use_tanh ? tape.tanh_op(v) : tape.sigmoid(v);
    Var sim = tape.cosine_similarity(act, tape.constant(target));
    tape.backward(sim);
    const Matrix analytic = p.grad;
    p.zero_grad();
    check_gradient(p, forward(use_tanh), analytic);
  }
}

TEST(Tape, AddAndBroadcastGradients) {
  util::Rng rng(4);
  Parameter a(random_matrix(3, 2, rng));
  Parameter bias(random_matrix(1, 2, rng));
  const Matrix target = random_matrix(1, 2, rng);

  Tape tape;
  Var va = tape.parameter(a);
  Var vb = tape.parameter(bias);
  Var sum = tape.add_row_broadcast(va, vb);
  Var pooled = tape.readout_mean(sum);
  Var sim = tape.cosine_similarity(pooled, tape.constant(target));
  tape.backward(sim);
  const Matrix ga = a.grad;
  const Matrix gb = bias.grad;
  a.zero_grad();
  bias.zero_grad();

  auto forward = [&]() {
    Tape t2;
    Var x = t2.parameter(a);
    Var y = t2.parameter(bias);
    Var s = t2.add_row_broadcast(x, y);
    Var pooled2 = t2.readout_mean(s);
    return t2.cosine_similarity(pooled2, t2.constant(target))
        .value()
        .at(0, 0);
  };
  check_gradient(a, forward, ga);
  check_gradient(bias, forward, gb);
}

TEST(Tape, SelectAndScaleRowsGradient) {
  util::Rng rng(5);
  Parameter x(random_matrix(4, 3, rng));
  Parameter scores(random_matrix(4, 1, rng, 0.1F, 1.0F));
  const std::vector<std::size_t> kept = {0, 2};
  const Matrix target = random_matrix(1, 3, rng);

  Tape tape;
  Var vx = tape.parameter(x);
  Var vs = tape.parameter(scores);
  Var gated = tape.scale_rows(vx, vs);
  Var selected = tape.select_rows(gated, kept);
  Var pooled = tape.readout_max(selected);
  Var sim = tape.cosine_similarity(pooled, tape.constant(target));
  tape.backward(sim);
  const Matrix gx = x.grad;
  const Matrix gs = scores.grad;
  x.zero_grad();
  scores.zero_grad();

  auto forward = [&]() {
    Tape t2;
    Var a = t2.parameter(x);
    Var b = t2.parameter(scores);
    Var gated2 = t2.scale_rows(a, b);
    Var sel = t2.select_rows(gated2, kept);
    Var pooled2 = t2.readout_max(sel);
    return t2.cosine_similarity(pooled2, t2.constant(target))
        .value()
        .at(0, 0);
  };
  check_gradient(x, forward, gx);
  check_gradient(scores, forward, gs);
  // Unselected rows of x receive gradient 0 only through scale_rows'
  // scores path; rows 1,3 must have zero feature gradient.
  EXPECT_FLOAT_EQ(gx.at(1, 0), 0.0F);
  EXPECT_FLOAT_EQ(gx.at(3, 2), 0.0F);
}

TEST(Tape, ReadoutGradients) {
  util::Rng rng(6);
  Parameter x(random_matrix(5, 3, rng));
  const Matrix target = random_matrix(1, 3, rng);
  for (const int mode : {0, 1, 2}) {
    auto apply = [mode](Tape& t, Var v) {
      if (mode == 0) return t.readout_sum(v);
      if (mode == 1) return t.readout_mean(v);
      return t.readout_max(v);
    };
    Tape tape;
    Var v = tape.parameter(x);
    Var pooled = apply(tape, v);
    Var sim = tape.cosine_similarity(pooled, tape.constant(target));
    tape.backward(sim);
    const Matrix analytic = x.grad;
    x.zero_grad();
    auto forward = [&]() {
      Tape t2;
      Var v2 = t2.parameter(x);
      Var pooled2 = apply(t2, v2);
      return t2.cosine_similarity(pooled2, t2.constant(target))
          .value()
          .at(0, 0);
    };
    check_gradient(x, forward, analytic);
  }
}

TEST(Tape, CosineSimilarityValueAndRange) {
  Tape tape;
  Var a = tape.constant(Matrix::from_rows({{1, 0}}));
  Var b = tape.constant(Matrix::from_rows({{0, 1}}));
  EXPECT_NEAR(tape.cosine_similarity(a, a).value().at(0, 0), 1.0F, 1e-6F);
  EXPECT_NEAR(tape.cosine_similarity(a, b).value().at(0, 0), 0.0F, 1e-6F);
  Var c = tape.constant(Matrix::from_rows({{-1, 0}}));
  EXPECT_NEAR(tape.cosine_similarity(a, c).value().at(0, 0), -1.0F, 1e-6F);
}

TEST(Tape, CosineEmbeddingLossEquation7) {
  // Y = 1: loss = 1 − ŷ ; Y = −1: loss = max(0, ŷ − margin).
  Tape tape;
  Var sim = tape.constant(Matrix::from_rows({{0.8F}}));
  EXPECT_NEAR(tape.cosine_embedding_loss(sim, 1, 0.5F).value().at(0, 0),
              0.2F, 1e-6F);
  EXPECT_NEAR(tape.cosine_embedding_loss(sim, -1, 0.5F).value().at(0, 0),
              0.3F, 1e-6F);
  Var low = tape.constant(Matrix::from_rows({{0.3F}}));
  EXPECT_NEAR(tape.cosine_embedding_loss(low, -1, 0.5F).value().at(0, 0),
              0.0F, 1e-6F);
}

TEST(Tape, CosineEmbeddingLossGradientThroughSimilarity) {
  util::Rng rng(8);
  Parameter a(random_matrix(1, 4, rng));
  const Matrix b = random_matrix(1, 4, rng);
  for (const int label : {1, -1}) {
    Tape tape;
    Var va = tape.parameter(a);
    Var vb = tape.constant(b);
    Var sim = tape.cosine_similarity(va, vb);
    Var loss = tape.cosine_embedding_loss(sim, label, 0.5F);
    tape.backward(loss);
    const Matrix analytic = a.grad;
    a.zero_grad();
    auto forward = [&]() {
      Tape t2;
      Var v2 = t2.parameter(a);
      Var s2 = t2.cosine_similarity(v2, t2.constant(b));
      return t2.cosine_embedding_loss(s2, label, 0.5F).value().at(0, 0);
    };
    check_gradient(a, forward, analytic);
  }
}

TEST(Tape, SumScalarsAndScale) {
  Tape tape;
  Parameter p(Matrix::from_rows({{2.0F}}));
  Var v = tape.parameter(p);
  Var doubled = tape.scale(v, 3.0F);
  Var total = tape.sum_scalars({doubled, doubled});
  EXPECT_FLOAT_EQ(total.value().at(0, 0), 12.0F);
  tape.backward(total);
  EXPECT_FLOAT_EQ(p.grad.at(0, 0), 6.0F);  // 2 paths × 3
}

TEST(Tape, DropoutTrainFalseIsIdentity) {
  util::Rng rng(10);
  Tape tape;
  Parameter p(random_matrix(2, 2, rng));
  Var v = tape.parameter(p);
  Var d = tape.dropout(v, 0.5F, rng, /*training=*/false);
  EXPECT_LT(max_abs_diff(d.value(), p.value), 1e-7F);
}

TEST(Tape, DropoutScalesSurvivors) {
  util::Rng rng(11);
  Tape tape;
  Var v = tape.constant(Matrix::ones(100, 10));
  Var d = tape.dropout(v, 0.4F, rng, /*training=*/true);
  int zeros = 0;
  int scaled = 0;
  for (float x : d.value().data()) {
    if (x == 0.0F) {
      ++zeros;
    } else {
      EXPECT_NEAR(x, 1.0F / 0.6F, 1e-5F);
      ++scaled;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.4, 0.05);
  EXPECT_GT(scaled, 0);
}

TEST(Tape, DropoutBackwardUsesSameMask) {
  util::Rng rng(12);
  Parameter p(Matrix::ones(1, 50));
  Tape tape;
  Var v = tape.parameter(p);
  Var d = tape.dropout(v, 0.5F, rng, true);
  Var pooled = tape.readout_sum(d);
  Var target = tape.constant(Matrix::ones(1, 50));
  Var sim = tape.cosine_similarity(d, target);
  (void)pooled;
  tape.backward(sim);
  // Dropped positions (forward zero) must have zero gradient.
  for (std::size_t c = 0; c < 50; ++c) {
    if (d.value().at(0, c) == 0.0F) {
      EXPECT_FLOAT_EQ(p.grad.at(0, c), 0.0F);
    }
  }
}

TEST(Tape, ResetReusesTapeBitIdentically) {
  util::Rng rng(13);
  Parameter w(random_matrix(3, 2, rng));
  const Matrix x = random_matrix(2, 3, rng);
  const Matrix target = random_matrix(1, 2, rng);

  auto run = [&](Tape& tape) {
    Var vx = tape.constant(x);
    Var vw = tape.parameter(w);
    Var prod = tape.matmul(vx, vw);
    Var pooled = tape.readout_mean(tape.relu(prod));
    Var sim = tape.cosine_similarity(pooled, tape.constant(target));
    tape.backward(sim);
    return sim.value().at(0, 0);
  };

  Tape fresh;
  const float first = run(fresh);
  const std::size_t nodes_used = fresh.num_nodes();
  const Matrix first_grad = w.grad;
  w.zero_grad();

  // Same tape, reset: same value, same gradient, same node count.
  fresh.reset();
  EXPECT_EQ(fresh.num_nodes(), 0u);
  const float second = run(fresh);
  EXPECT_EQ(first, second);
  EXPECT_EQ(fresh.num_nodes(), nodes_used);
  EXPECT_EQ(max_abs_diff(first_grad, w.grad), 0.0F);
}

TEST(Tape, GradSinkCapturesLeafGradients) {
  util::Rng rng(14);
  Parameter w(random_matrix(2, 2, rng));
  const Matrix target = random_matrix(1, 2, rng);

  // Reference: plain backward into Parameter::grad.
  {
    Tape tape;
    Var vw = tape.parameter(w);
    Var sim = tape.cosine_similarity(tape.readout_sum(vw),
                                     tape.constant(target));
    tape.backward(sim);
  }
  const Matrix reference = w.grad;
  w.zero_grad();

  // Shadow mode: Parameter::grad stays untouched until add_into_params.
  GradSink sink;
  Tape tape;
  tape.set_grad_sink(&sink);
  Var vw = tape.parameter(w);
  Var sim =
      tape.cosine_similarity(tape.readout_sum(vw), tape.constant(target));
  tape.backward(sim);
  EXPECT_FLOAT_EQ(w.grad.max_abs(), 0.0F);
  ASSERT_EQ(sink.num_params(), 1u);
  EXPECT_EQ(max_abs_diff(sink.shadow(w), reference), 0.0F);

  sink.add_into_params();
  EXPECT_EQ(max_abs_diff(w.grad, reference), 0.0F);

  // clear() zeroes the shadow but keeps the buffer registered.
  sink.clear();
  EXPECT_FLOAT_EQ(sink.shadow(w).max_abs(), 0.0F);
  EXPECT_EQ(sink.num_params(), 1u);
}

TEST(Tape, SeededBackwardMatchesAnalyticJacobian) {
  // h = x·W (1×2); backward seeded with dy gives dW = xᵀ·dy exactly.
  Parameter w(Matrix::from_rows({{1.0F, -2.0F}, {0.5F, 3.0F}}));
  const Matrix x = Matrix::from_rows({{2.0F, -1.0F}});
  const Matrix seed = Matrix::from_rows({{0.25F, -4.0F}});

  Tape tape;
  Var vw = tape.parameter(w);
  Var h = tape.matmul(tape.constant(x), vw);
  tape.backward(h, seed);
  const Matrix expected = matmul_at_b(x, seed);
  EXPECT_EQ(max_abs_diff(w.grad, expected), 0.0F);
}

TEST(Tape, SeededBackwardRejectsShapeMismatch) {
  Tape tape;
  Parameter p(Matrix::ones(1, 3));
  Var v = tape.parameter(p);
  EXPECT_THROW(tape.backward(v, Matrix::ones(2, 2)),
               util::ContractViolation);
}

TEST(Tape, CrossTapeVarRejected) {
  Tape t1;
  Tape t2;
  Var v = t1.constant(Matrix::ones(1, 1));
  EXPECT_THROW(t2.relu(v), util::ContractViolation);
}

TEST(Tape, BackwardRequiresScalar) {
  Tape tape;
  Parameter p(Matrix::ones(2, 2));
  Var v = tape.parameter(p);
  EXPECT_THROW(tape.backward(v), util::ContractViolation);
}

}  // namespace
}  // namespace gnn4ip::tensor
