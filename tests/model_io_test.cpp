// Model persistence hardening: exact round-trips, magic/version
// rejection, and config-drift detection (malformed streams must throw,
// never silently mis-load).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "dfg/node_kind.h"
#include "gnn/featurize.h"
#include "gnn/model_io.h"

namespace gnn4ip::gnn {
namespace {

graph::Digraph probe_graph() {
  graph::Digraph g;
  g.add_node("out", static_cast<int>(dfg::NodeKind::kOutput));
  g.add_node("op", static_cast<int>(dfg::NodeKind::kAnd));
  g.add_node("a", static_cast<int>(dfg::NodeKind::kInput));
  g.add_node("b", static_cast<int>(dfg::NodeKind::kInput));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  return g;
}

std::string saved_model_text(Hw2Vec& model) {
  std::ostringstream os;
  save_model(os, model);
  return os.str();
}

/// Replace the first line of a saved stream.
std::string with_header(const std::string& text, const std::string& header) {
  const std::size_t eol = text.find('\n');
  return header + text.substr(eol);
}

TEST(ModelIo, RoundTripEmbeddingsAreBitIdentical) {
  Hw2VecConfig config;
  config.seed = 99;
  Hw2Vec model(config);
  const GraphTensors t = featurize(probe_graph());
  const tensor::Matrix before = model.embed_inference(t);

  std::stringstream buffer;
  save_model(buffer, model);
  Hw2Vec loaded = load_model(buffer);
  const tensor::Matrix after = loaded.embed_inference(t);
  // 9 significant digits round-trip float exactly, so the loaded model
  // must reproduce the embedding bit for bit, not just approximately.
  EXPECT_EQ(tensor::max_abs_diff(before, after), 0.0F);
}

TEST(ModelIo, HeaderCarriesMagicAndVersion) {
  Hw2Vec model;
  const std::string text = saved_model_text(model);
  const std::string expected = std::string(kModelMagic) + " v" +
                               std::to_string(kModelFormatVersion) + "\n";
  EXPECT_EQ(text.substr(0, expected.size()), expected);
}

TEST(ModelIo, RejectsMissingMagic) {
  Hw2Vec model;
  std::istringstream is(with_header(saved_model_text(model), "weights v2"));
  try {
    (void)load_model(is);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(ModelIo, RejectsMismatchedVersionWithClearError) {
  Hw2Vec model;
  for (const std::string bad : {"hw2vec-model v1", "hw2vec-model v99"}) {
    std::istringstream is(with_header(saved_model_text(model), bad));
    try {
      (void)load_model(is);
      FAIL() << "expected std::runtime_error for header: " << bad;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("version"), std::string::npos) << what;
      EXPECT_NE(what.find("v2"), std::string::npos) << what;
    }
  }
}

TEST(ModelIo, RejectsParamCountDrift) {
  Hw2Vec model;
  std::string text = saved_model_text(model);
  const std::size_t pos = text.find("params 6");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 8, "params 4");
  std::istringstream is(text);
  try {
    (void)load_model(is);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("config drift"), std::string::npos);
  }
}

TEST(ModelIo, RejectsLayerShapeDrift) {
  // A stream whose config says hidden_dim 8 but whose first weight block
  // is the 16-wide one from a different model must throw, not read junk.
  Hw2VecConfig wide;
  wide.hidden_dim = 16;
  Hw2Vec model(wide);
  std::string text = saved_model_text(model);
  const std::size_t pos = text.find(" 16 ");  // hidden_dim in the config
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, " 8 ");
  std::istringstream is(text);
  try {
    (void)load_model(is);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("config drift"), std::string::npos);
  }
}

TEST(ModelIo, RejectsTruncatedStream) {
  Hw2Vec model;
  std::string text = saved_model_text(model);
  // Drop the sentinel and the last weight row.
  const std::size_t end_pos = text.rfind("end\n");
  ASSERT_NE(end_pos, std::string::npos);
  const std::size_t cut = text.rfind('\n', end_pos - 2);
  std::istringstream is(text.substr(0, cut + 1));
  EXPECT_THROW((void)load_model(is), std::runtime_error);
}

TEST(ModelIo, RejectsMissingEndSentinel) {
  Hw2Vec model;
  std::string text = saved_model_text(model);
  const std::size_t end_pos = text.rfind("end\n");
  ASSERT_NE(end_pos, std::string::npos);
  std::istringstream is(text.substr(0, end_pos));
  try {
    (void)load_model(is);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sentinel"), std::string::npos);
  }
}

}  // namespace
}  // namespace gnn4ip::gnn
