// End-to-end integration tests over the public facade: train a small
// detector on a reduced corpus and check the paper-level behaviors
// (piracy detection, obfuscation resilience, subset scoring).
#include <gtest/gtest.h>

#include "core/gnn4ip.h"
#include "data/rtl_designs.h"
#include "gnn/model_io.h"

namespace gnn4ip {
namespace {

/// Small RTL corpus + trained detector shared by the expensive tests.
class TrainedDetectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::RtlCorpusOptions corpus_options;
    corpus_options.instances_per_family = 4;
    corpus_options.families = {"adder",  "alu",        "counter",
                               "crc8",   "multiplier", "parity",
                               "lfsr",   "gray_counter"};
    corpus_options.seed = 31;
    const auto items = data::build_rtl_corpus(corpus_options);
    detector_ = new PiracyDetector();
    train::TrainConfig tc;
    tc.epochs = 30;
    tc.batch_graphs = 16;
    tc.learning_rate = 5e-3F;
    tc.seed = 33;
    eval_ = new train::EvalResult(
        detector_->train_on(make_graph_entries(items), tc));
  }

  static void TearDownTestSuite() {
    delete eval_;
    delete detector_;
    eval_ = nullptr;
    detector_ = nullptr;
  }

  static PiracyDetector* detector_;
  static train::EvalResult* eval_;
};

PiracyDetector* TrainedDetectorTest::detector_ = nullptr;
train::EvalResult* TrainedDetectorTest::eval_ = nullptr;

TEST_F(TrainedDetectorTest, HeldOutAccuracyHigh) {
  EXPECT_GT(eval_->confusion.accuracy(), 0.8)
      << eval_->confusion.to_string();
}

TEST_F(TrainedDetectorTest, SameFamilyUnseenVariantsScoreHigh) {
  // Unseen seeds of a trained family: piracy must be flagged. (crc8's
  // styles share an XOR-network topology; the adder family's extreme
  // behavioral-vs-gate-level split needs paper-scale training and is
  // exercised by the Table II bench instead.)
  const std::string a = data::gen_crc8({0, 901});
  const std::string b = data::gen_crc8({1, 902});
  const Verdict v = detector_->check(a, b);
  EXPECT_GT(v.similarity, 0.0F);
}

TEST_F(TrainedDetectorTest, CrossFamilyScoresLowerThanSameFamilyOnAverage) {
  // Averaged over several unseen variants; single pairs can be noisy for
  // a model this small (the full benches train at paper scale).
  double same_sum = 0.0;
  double cross_sum = 0.0;
  int count = 0;
  for (std::uint64_t s = 941; s < 944; ++s) {
    const std::string crc_a = data::gen_crc8({0, s});
    const std::string crc_b = data::gen_crc8({1, s + 50});
    const std::string lfsr = data::gen_lfsr({0, s + 100});
    same_sum += detector_->similarity(crc_a, crc_b);
    cross_sum += detector_->similarity(crc_a, lfsr);
    ++count;
  }
  EXPECT_GT(same_sum / count, cross_sum / count);
}

TEST_F(TrainedDetectorTest, DeltaTunedWithinRange) {
  EXPECT_GT(eval_->delta, -1.0F);
  EXPECT_LT(eval_->delta, 1.0F);
  EXPECT_FLOAT_EQ(detector_->delta(), eval_->delta);
}

TEST_F(TrainedDetectorTest, SaveLoadKeepsBehavior) {
  const std::string path = ::testing::TempDir() + "/gnn4ip_model.txt";
  detector_->save(path);
  PiracyDetector loaded;
  loaded.load(path);
  const std::string a = data::gen_crc8({0, 921});
  const std::string b = data::gen_crc8({1, 922});
  EXPECT_NEAR(loaded.similarity(a, b), detector_->similarity(a, b), 1e-4F);
}

TEST(Facade, MakeGraphEntryLabels) {
  data::CorpusItem item;
  item.name = "x#0";
  item.design = "x";
  item.kind = "rtl";
  item.verilog =
      "module x (input a, output y);\n  assign y = ~a;\nendmodule\n";
  const train::GraphEntry entry = make_graph_entry(item);
  EXPECT_EQ(entry.name, "x#0");
  EXPECT_EQ(entry.design, "x");
  EXPECT_GT(entry.tensors.num_nodes, 0u);
}

TEST(Facade, MalformedVerilogPropagatesParseError) {
  data::CorpusItem item;
  item.verilog = "module broken (";
  EXPECT_THROW(make_graph_entry(item), verilog::ParseError);
}

TEST(Facade, UntrainedDetectorStillProducesScores) {
  PiracyDetector detector;
  const float s = detector.similarity(
      "module a (input x, output y);\n  assign y = ~x;\nendmodule\n",
      "module b (input p, output q);\n  assign q = ~p;\nendmodule\n");
  EXPECT_GE(s, -1.0F);
  EXPECT_LE(s, 1.0F);
  // Identical structure, different names: identical embedding.
  EXPECT_NEAR(s, 1.0F, 1e-5F);
}

TEST(Facade, CheckAppliesDelta) {
  PiracyDetector detector;
  detector.set_delta(0.99F);
  const std::string a =
      "module a (input x, input z, output y);\n  assign y = x & z;\n"
      "endmodule\n";
  const std::string b =
      "module b (input p, output q);\n  assign q = ~p;\nendmodule\n";
  const Verdict v = detector.check(a, b);
  EXPECT_EQ(v.is_piracy, v.similarity > 0.99F);
}

}  // namespace
}  // namespace gnn4ip
