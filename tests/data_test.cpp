// Dataset substrate tests: netlist builder + simulator, RTL families,
// ISCAS stand-ins (functional correctness!), obfuscation behavior
// preservation, and corpus assembly.
#include <gtest/gtest.h>

#include <set>

#include "data/corpus.h"
#include "data/iscas.h"
#include "data/netlist.h"
#include "data/obfuscate.h"
#include "data/rtl_designs.h"
#include "dfg/pipeline.h"
#include "graph/algorithms.h"
#include "util/contract.h"
#include "util/rng.h"

namespace gnn4ip::data {
namespace {

// --- netlist builder + simulator ------------------------------------------------

TEST(Netlist, RippleAdderComputesCorrectSums) {
  NetlistBuilder b("add4");
  const Bus a = b.input_bus("a", 4);
  const Bus bb = b.input_bus("b", 4);
  const Bit cin = b.input("cin");
  const auto r = b.ripple_add(a, bb, cin);
  b.output_bus("s", r.sum);
  b.output("cout", r.carry);
  const Netlist n = b.take();
  for (unsigned x = 0; x < 16; x += 3) {
    for (unsigned y = 0; y < 16; y += 5) {
      for (unsigned c = 0; c < 2; ++c) {
        std::map<std::string, bool> in;
        set_bus(in, "a", 4, x);
        set_bus(in, "b", 4, y);
        in["cin"] = c != 0;
        const auto out = evaluate(n, in);
        const unsigned expect = x + y + c;
        EXPECT_EQ(get_bus(out, "s", 4), expect & 0xF);
        EXPECT_EQ(out.at("cout"), ((expect >> 4) & 1) != 0);
      }
    }
  }
}

TEST(Netlist, SubtractorViaTwosComplement) {
  NetlistBuilder b("sub4");
  const Bus a = b.input_bus("a", 4);
  const Bus bb = b.input_bus("b", 4);
  const auto r = b.subtract(a, bb);
  b.output_bus("d", r.sum);
  const Netlist n = b.take();
  std::map<std::string, bool> in;
  set_bus(in, "a", 4, 9);
  set_bus(in, "b", 4, 3);
  EXPECT_EQ(get_bus(evaluate(n, in), "d", 4), 6u);
  set_bus(in, "a", 4, 2);
  set_bus(in, "b", 4, 5);
  EXPECT_EQ(get_bus(evaluate(n, in), "d", 4), (2u - 5u) & 0xF);
}

TEST(Netlist, MultiplierMatchesReference) {
  NetlistBuilder b("mul4");
  const Bus a = b.input_bus("a", 4);
  const Bus bb = b.input_bus("b", 4);
  b.output_bus("p", b.multiply(a, bb));
  const Netlist n = b.take();
  for (unsigned x : {0u, 1u, 7u, 12u, 15u}) {
    for (unsigned y : {0u, 2u, 9u, 15u}) {
      std::map<std::string, bool> in;
      set_bus(in, "a", 4, x);
      set_bus(in, "b", 4, y);
      EXPECT_EQ(get_bus(evaluate(n, in), "p", 8), x * y)
          << x << " * " << y;
    }
  }
}

TEST(Netlist, MuxEqualsConstNets) {
  NetlistBuilder b("mx");
  const Bit s = b.input("s");
  const Bit x = b.input("x");
  const Bit y = b.input("y");
  b.output("m", b.mux2(s, x, y));
  b.output("one", b.const_one());
  b.output("zero", b.const_zero());
  const Netlist n = b.take();
  for (int mask = 0; mask < 8; ++mask) {
    const std::map<std::string, bool> in = {{"s", (mask & 1) != 0},
                                            {"x", (mask & 2) != 0},
                                            {"y", (mask & 4) != 0}};
    const auto out = evaluate(n, in);
    EXPECT_EQ(out.at("m"), in.at("s") ? in.at("x") : in.at("y"));
    EXPECT_TRUE(out.at("one"));
    EXPECT_FALSE(out.at("zero"));
  }
}

TEST(Netlist, EvaluateDetectsMissingInput) {
  NetlistBuilder b("m");
  const Bit a = b.input("a");
  b.output("y", b.not1(a));
  const Netlist n = b.take();
  EXPECT_THROW(evaluate(n, {}), util::ContractViolation);
}

TEST(Netlist, VerilogEmissionParsesIntoDfg) {
  NetlistBuilder b("emit_test");
  const Bus a = b.input_bus("a", 2);
  const Bus bb = b.input_bus("b", 2);
  const auto r = b.ripple_add(a, bb, Bit{});
  b.output_bus("s", r.sum);
  const Netlist n = b.take();
  const graph::Digraph g = dfg::extract_dfg(n.to_verilog());
  EXPECT_GT(g.num_nodes(), 6u);
  EXPECT_EQ(graph::num_weak_components(g), 1);
}

// --- ISCAS stand-ins: functional correctness --------------------------------------

TEST(Iscas, C432PriorityAndEncoding) {
  const Netlist n = build_c432_interrupt_controller();
  std::map<std::string, bool> in;
  set_bus(in, "a", 9, 0);
  set_bus(in, "b", 9, 1u << 4);  // bus B channel 4 requests
  set_bus(in, "c", 9, 1u << 2);  // bus C channel 2 requests
  set_bus(in, "e", 9, 0x1FF);    // all channels enabled
  auto out = evaluate(n, in);
  EXPECT_FALSE(out.at("pa"));
  EXPECT_TRUE(out.at("pb"));   // B outranks C
  EXPECT_FALSE(out.at("pc"));
  EXPECT_EQ(get_bus(out, "ch", 4), 4u);

  // Bus A present: outranks everything.
  set_bus(in, "a", 9, 1u << 7);
  out = evaluate(n, in);
  EXPECT_TRUE(out.at("pa"));
  EXPECT_FALSE(out.at("pb"));
  EXPECT_EQ(get_bus(out, "ch", 4), 7u);

  // Disabled channels are ignored.
  set_bus(in, "e", 9, 0);
  out = evaluate(n, in);
  EXPECT_FALSE(out.at("pa"));
  EXPECT_FALSE(out.at("pb"));
  EXPECT_FALSE(out.at("pc"));
}

// Mirror of the decoder's data-bit placement: codeword positions 1..38
// skipping the power-of-two parity slots.
std::size_t hamming_position(std::size_t i) {
  std::size_t pos = 1;
  std::size_t seen = 0;
  while (true) {
    if ((pos & (pos - 1)) != 0) {
      if (seen == i) return pos;
      ++seen;
    }
    ++pos;
  }
}

TEST(Iscas, C499CorrectsSingleBitErrors) {
  const Netlist n = build_c499_sec32(false);
  util::Rng rng(1);
  for (int trial = 0; trial < 4; ++trial) {
    const unsigned long long data = rng.next_u64() & 0xFFFFFFFFULL;
    // Reference check bits from the H matrix the decoder uses.
    unsigned long long check = 0;
    for (std::size_t i = 0; i < 32; ++i) {
      if (((data >> i) & 1ULL) == 0) continue;
      check ^= hamming_position(i);
    }
    // Clean word decodes to itself.
    std::map<std::string, bool> clean;
    set_bus(clean, "d", 32, data);
    set_bus(clean, "r", 6, check);
    EXPECT_EQ(get_bus(evaluate(n, clean), "o", 32), data);
    // Corrupt one data bit; decoder must fix it.
    const std::size_t bad_bit = rng.next_below(32);
    std::map<std::string, bool> in;
    set_bus(in, "d", 32, data ^ (1ULL << bad_bit));
    set_bus(in, "r", 6, check);
    EXPECT_EQ(get_bus(evaluate(n, in), "o", 32), data)
        << "trial " << trial << " bit " << bad_bit;
  }
}

TEST(Iscas, C880AluOperations) {
  const Netlist n = build_c880_alu8();
  std::map<std::string, bool> in;
  set_bus(in, "a", 8, 0xC5);
  set_bus(in, "b", 8, 0x3A);
  in["cin"] = false;
  // s1 s0: 00 add, 01 and, 10 or, 11 xor (per mux wiring).
  in["s0"] = false;
  in["s1"] = false;
  EXPECT_EQ(get_bus(evaluate(n, in), "f", 8), (0xC5u + 0x3Au) & 0xFF);
  in["s0"] = true;
  EXPECT_EQ(get_bus(evaluate(n, in), "f", 8), 0xC5u & 0x3Au);
  in["s0"] = false;
  in["s1"] = true;
  EXPECT_EQ(get_bus(evaluate(n, in), "f", 8), 0xC5u | 0x3Au);
  in["s0"] = true;
  EXPECT_EQ(get_bus(evaluate(n, in), "f", 8), 0xC5u ^ 0x3Au);
  // Zero flag.
  set_bus(in, "a", 8, 0x55);
  set_bus(in, "b", 8, 0x55);
  EXPECT_TRUE(evaluate(n, in).at("zf"));  // xor of equal values is 0
}

TEST(Iscas, C1355SameFunctionAsC499DifferentStructure) {
  const Netlist c499 = build_c499_sec32(false);
  const Netlist c1355 = build_c499_sec32(true);
  // Structure differs (NAND form has more gates)...
  EXPECT_GT(c1355.num_gates(), c499.num_gates());
  // ...but the function is identical.
  util::Rng rng(2);
  for (int trial = 0; trial < 3; ++trial) {
    std::map<std::string, bool> in;
    set_bus(in, "d", 32, rng.next_u64() & 0xFFFFFFFFULL);
    set_bus(in, "r", 6, rng.next_below(64));
    EXPECT_EQ(get_bus(evaluate(c499, in), "o", 32),
              get_bus(evaluate(c1355, in), "o", 32));
  }
}

TEST(Iscas, C1908DetectsDoubleErrors) {
  const Netlist n = build_c1908_secded16();
  const unsigned long long data = 0xBEEF;
  // Find the valid (r, rp) by brute force over r (5 bits) and rp.
  unsigned long long check = 0;
  bool parity = false;
  bool found = false;
  for (unsigned long long r = 0; r < 32 && !found; ++r) {
    for (int p = 0; p < 2 && !found; ++p) {
      std::map<std::string, bool> probe;
      set_bus(probe, "d", 16, data);
      set_bus(probe, "r", 5, r);
      probe["rp"] = p != 0;
      const auto out = evaluate(n, probe);
      if (!out.at("single_err") && !out.at("double_err") &&
          get_bus(out, "o", 16) == data) {
        check = r;
        parity = p != 0;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  // Single error: corrected, flagged single.
  std::map<std::string, bool> in;
  set_bus(in, "d", 16, data ^ (1ULL << 7));
  set_bus(in, "r", 5, check);
  in["rp"] = parity;
  auto out = evaluate(n, in);
  EXPECT_TRUE(out.at("single_err"));
  EXPECT_FALSE(out.at("double_err"));
  EXPECT_EQ(get_bus(out, "o", 16), data);
  // Double error: flagged double, not silently "corrected".
  set_bus(in, "d", 16, data ^ (1ULL << 7) ^ (1ULL << 2));
  out = evaluate(n, in);
  EXPECT_TRUE(out.at("double_err"));
  EXPECT_FALSE(out.at("single_err"));
}

TEST(Iscas, C6288Multiplies) {
  const Netlist n = build_c6288_mult16();
  EXPECT_GT(n.num_gates(), 1500u);  // array-multiplier scale
  std::map<std::string, bool> in;
  set_bus(in, "a", 16, 0xABCD);
  set_bus(in, "b", 16, 0x0123);
  EXPECT_EQ(get_bus(evaluate(n, in), "p", 32),
            0xABCDULL * 0x0123ULL);
}

TEST(Iscas, AllSixBenchmarksRegistered) {
  const auto benches = iscas_benchmarks();
  ASSERT_EQ(benches.size(), 6u);
  std::set<std::string> names;
  for (const auto& b : benches) names.insert(b.name);
  EXPECT_TRUE(names.count("c432"));
  EXPECT_TRUE(names.count("c6288"));
  for (const auto& b : benches) {
    EXPECT_GT(b.netlist.num_gates(), 20u) << b.name;
  }
}

// --- obfuscation: behavior preservation --------------------------------------------

TEST(Obfuscate, PreservesBehaviorOnAlu) {
  const Netlist base = build_netlist_family("nl_alu4");
  util::Rng rng(3);
  ObfuscationConfig config;  // defaults: all transforms on
  const Netlist obf = obfuscate(base, config, rng);
  EXPECT_GT(obf.num_gates(), base.num_gates());
  util::Rng in_rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::map<std::string, bool> in;
    set_bus(in, "a", 4, in_rng.next_below(16));
    set_bus(in, "b", 4, in_rng.next_below(16));
    in["s0"] = in_rng.flip(0.5);
    in["s1"] = in_rng.flip(0.5);
    EXPECT_EQ(get_bus(evaluate(base, in), "f", 4),
              get_bus(evaluate(obf, in), "f", 4));
  }
}

TEST(Obfuscate, PreservesBehaviorOnIscasC880) {
  const Netlist base = build_c880_alu8();
  util::Rng rng(5);
  ObfuscationConfig config;
  config.dummy_gates = 16;
  const Netlist obf = obfuscate(base, config, rng);
  util::Rng in_rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    std::map<std::string, bool> in;
    set_bus(in, "a", 8, in_rng.next_below(256));
    set_bus(in, "b", 8, in_rng.next_below(256));
    in["cin"] = in_rng.flip(0.5);
    in["s0"] = in_rng.flip(0.5);
    in["s1"] = in_rng.flip(0.5);
    const auto out_base = evaluate(base, in);
    const auto out_obf = evaluate(obf, in);
    EXPECT_EQ(get_bus(out_base, "f", 8), get_bus(out_obf, "f", 8));
    EXPECT_EQ(out_base.at("cout"), out_obf.at("cout"));
  }
}

TEST(Obfuscate, RestructureChangesStructureKeepsPorts) {
  const Netlist base = build_netlist_family("nl_adder8");
  util::Rng rng(7);
  const Netlist re = restructure(base, rng);
  EXPECT_EQ(re.inputs, base.inputs);
  EXPECT_EQ(re.outputs, base.outputs);
  const graph::Digraph g1 = dfg::extract_dfg(base.to_verilog());
  const graph::Digraph g2 = dfg::extract_dfg(re.to_verilog());
  EXPECT_NE(graph::structural_hash(g1), graph::structural_hash(g2));
}

TEST(Obfuscate, DifferentSeedsDifferentResults) {
  const Netlist base = build_netlist_family("nl_parity16");
  util::Rng r1(8);
  util::Rng r2(9);
  ObfuscationConfig config;
  const Netlist o1 = obfuscate(base, config, r1);
  const Netlist o2 = obfuscate(base, config, r2);
  const graph::Digraph g1 = dfg::extract_dfg(o1.to_verilog());
  const graph::Digraph g2 = dfg::extract_dfg(o2.to_verilog());
  EXPECT_NE(graph::structural_hash(g1), graph::structural_hash(g2));
}

// --- RTL families -----------------------------------------------------------------

class RtlFamilyTest : public ::testing::TestWithParam<RtlFamily> {};

TEST_P(RtlFamilyTest, AllStylesParseAndExtract) {
  const RtlFamily& family = GetParam();
  for (int style = 0; style < family.num_styles; ++style) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      RtlVariant v{style, seed};
      const std::string src = family.generate(v);
      graph::Digraph g;
      ASSERT_NO_THROW(g = dfg::extract_dfg(src))
          << family.name << " style " << style << " seed " << seed
          << "\n--- source ---\n"
          << src;
      EXPECT_GT(g.num_nodes(), 5u) << family.name;
      EXPECT_GT(g.num_edges(), 4u) << family.name;
    }
  }
}

TEST_P(RtlFamilyTest, VariantsAreStructurallyDistinct) {
  const RtlFamily& family = GetParam();
  std::set<std::uint64_t> hashes;
  int instances = 0;
  for (int i = 0; i < 4; ++i) {
    RtlVariant v{i % family.num_styles, static_cast<std::uint64_t>(100 + i)};
    const graph::Digraph g = dfg::extract_dfg(family.generate(v));
    hashes.insert(graph::structural_hash(g));
    ++instances;
  }
  // At least half the instances should be structurally distinct — the
  // corpus must not collapse into identical graphs.
  EXPECT_GE(hashes.size(), static_cast<std::size_t>(instances) / 2)
      << family.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, RtlFamilyTest, ::testing::ValuesIn(rtl_families()),
    [](const ::testing::TestParamInfo<RtlFamily>& param_info) {
      return param_info.param.name;
    });

TEST(RtlDesigns, UnknownFamilyThrows) {
  EXPECT_THROW(generate_rtl("warp_drive", {}), std::invalid_argument);
}

TEST(RtlDesigns, AluBlockSharesCoreWithMips) {
  // The standalone ALU and the MIPS cores must both contain the shared
  // alu_core operator mix (Table II case 3 depends on this).
  const graph::Digraph alu = dfg::extract_dfg(gen_alu_block({0, 5}));
  const graph::Digraph mips = dfg::extract_dfg(gen_mips_single({0, 5}));
  EXPECT_GT(mips.num_nodes(), alu.num_nodes());
  const auto alu_hist = graph::kind_histogram(alu);
  const auto mips_hist = graph::kind_histogram(mips);
  // Every operator kind present in the ALU also appears in the MIPS.
  for (std::size_t k = 0; k < alu_hist.size(); ++k) {
    if (alu_hist[k] > 0) {
      ASSERT_LT(k, mips_hist.size());
      EXPECT_GT(mips_hist[k], 0) << "kind " << k;
    }
  }
}

// --- corpus --------------------------------------------------------------------

TEST(Corpus, RtlCorpusShapeAndUniqueness) {
  RtlCorpusOptions options;
  options.instances_per_family = 3;
  const auto items = build_rtl_corpus(options);
  EXPECT_EQ(items.size(), rtl_families().size() * 3);
  std::set<std::string> names;
  for (const auto& item : items) {
    EXPECT_EQ(item.kind, "rtl");
    names.insert(item.name);
  }
  EXPECT_EQ(names.size(), items.size());  // unique instance names
}

TEST(Corpus, RtlCorpusFamilyFilter) {
  RtlCorpusOptions options;
  options.instances_per_family = 2;
  options.families = {"adder", "alu"};
  const auto items = build_rtl_corpus(options);
  EXPECT_EQ(items.size(), 4u);
}

TEST(Corpus, NetlistCorpusAllParse) {
  NetlistCorpusOptions options;
  options.instances_per_family = 2;
  options.include_iscas = false;
  const auto items = build_netlist_corpus(options);
  EXPECT_EQ(items.size(), netlist_family_names().size() * 2);
  for (const auto& item : items) {
    EXPECT_EQ(item.kind, "netlist");
    EXPECT_NO_THROW(dfg::extract_dfg(item.verilog)) << item.name;
  }
}

TEST(Corpus, NetlistCorpusWithIscas) {
  NetlistCorpusOptions options;
  options.instances_per_family = 1;
  options.include_iscas = true;
  options.iscas_obfuscated_per_benchmark = 2;
  const auto items = build_netlist_corpus(options);
  // 11 structural families + 6 benchmarks × (1 original + 2 obfuscated).
  EXPECT_EQ(items.size(), netlist_family_names().size() + 6 * 3);
  int iscas_count = 0;
  for (const auto& item : items) {
    if (item.design[0] == 'c' && item.design != "counter") ++iscas_count;
  }
  EXPECT_EQ(iscas_count, 18);
}

TEST(Corpus, IscasObfuscatedKeepDesignKey) {
  IscasCorpusOptions options;
  options.obfuscated_per_benchmark = 2;
  const auto items = build_iscas_obfuscated(options);
  EXPECT_EQ(items.size(), 12u);
  for (const auto& item : items) {
    EXPECT_TRUE(item.design == "c432" || item.design == "c499" ||
                item.design == "c880" || item.design == "c1355" ||
                item.design == "c1908" || item.design == "c6288");
  }
}

TEST(Corpus, MipsVisualizationCorpus) {
  const auto items = build_mips_visualization_corpus(3);
  EXPECT_EQ(items.size(), 6u);
  int pipeline = 0;
  for (const auto& item : items) {
    if (item.design == "mips_pipeline") ++pipeline;
    EXPECT_NO_THROW(dfg::extract_dfg(item.verilog)) << item.name;
  }
  EXPECT_EQ(pipeline, 3);
}

TEST(Corpus, CorpusIsDeterministic) {
  RtlCorpusOptions options;
  options.instances_per_family = 2;
  options.families = {"crc8"};
  const auto a = build_rtl_corpus(options);
  const auto b = build_rtl_corpus(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].verilog, b[i].verilog);
  }
}

}  // namespace
}  // namespace gnn4ip::data
