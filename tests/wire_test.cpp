// Wire-protocol robustness tests — the acceptance bar mirrors
// snapshot_test's: every malformed-stream case (truncation at every
// header offset, bad magic/version/byte order, oversize length prefix,
// fingerprint and dim mismatch at handshake, mid-stream disconnect,
// out-of-order and unknown frames) fails with its *distinct typed*
// net::WireError, never a crash and never a hang — every read in this
// suite is deadline-bounded (set_recv_timeout), so a protocol bug shows
// up as WireTimeoutError instead of a stuck CI job. The server half of
// each case also proves resilience: one hostile connection never stops
// the ShardServer from serving the next good one.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dist/shard_server.h"
#include "net/socket.h"
#include "net/wire_format.h"

namespace gnn4ip {
namespace {

using net::FrameBuilder;
using net::FrameCursor;
using net::MsgType;

/// A live ShardServer on an ephemeral loopback port, serving on its own
/// thread for the lifetime of the fixture.
struct LiveServer {
  explicit LiveServer(dist::ShardServerOptions options = {}) {
    options.poll_ms = 20;  // fast stop() for test teardown
    server = std::make_unique<dist::ShardServer>(0, std::move(options));
    thread = std::thread([this] { server->serve(); });
  }
  ~LiveServer() {
    server->stop();
    thread.join();
  }
  [[nodiscard]] net::Socket connect() const {
    net::Socket sock = net::Socket::connect_to("127.0.0.1", server->port());
    // Nothing in this suite may hang: a missing response is a typed
    // timeout, not a stuck test.
    sock.set_recv_timeout(2000);
    return sock;
  }

  std::unique_ptr<dist::ShardServer> server;
  std::thread thread;
};

/// A well-formed Hello frame (the knobs let each test break one field).
std::vector<std::uint8_t> hello_frame(const char* magic = net::kWireMagic,
                                      std::uint32_t version = net::kWireVersion,
                                      std::uint32_t bom = net::kWireByteOrderMark,
                                      std::uint32_t dim = 0,
                                      const std::string& fingerprint = "") {
  std::vector<std::uint8_t> buf;
  FrameBuilder b(buf, MsgType::kHello);
  b.put_bytes(magic, sizeof(net::kWireMagic));
  b.put_u32(version);
  b.put_u32(bom);
  b.put_u32(dim);
  b.put_string(fingerprint);
  b.finish();
  return buf;
}

/// Send a Hello and consume the HelloAck — the preamble of every
/// post-handshake test.
void handshake(net::Socket& sock, const std::string& fingerprint = "") {
  const std::vector<std::uint8_t> hello =
      hello_frame(net::kWireMagic, net::kWireVersion, net::kWireByteOrderMark,
                  0, fingerprint);
  sock.write_all(hello.data(), hello.size());
  (void)net::expect_frame(sock, MsgType::kHelloAck);
}

// ---- Frame encode/decode over a real fd (socketpair harness) --------------

TEST(WireFrame, RoundTripsOverSocketPair) {
  auto [a, b] = net::Socket::pair();
  std::vector<std::uint8_t> buf;
  FrameBuilder out(buf, MsgType::kInfo);
  out.put_u32(7);
  out.put_u64(1234567890123ULL);
  out.put_f32(0.25F);
  out.put_string("adder#3");
  out.finish();
  a.write_all(buf.data(), buf.size());

  const net::Frame frame = net::read_frame(b);
  EXPECT_EQ(frame.type, MsgType::kInfo);
  FrameCursor cur(frame.payload);
  EXPECT_EQ(cur.get_u32("u32"), 7u);
  EXPECT_EQ(cur.get_u64("u64"), 1234567890123ULL);
  EXPECT_EQ(cur.get_f32("f32"), 0.25F);
  EXPECT_EQ(cur.get_string("str"), "adder#3");
  EXPECT_NO_THROW(cur.done("info"));
}

TEST(WireFrame, TruncationAtEveryHeaderOffsetIsTyped) {
  // A full valid frame is 5 header bytes (u32 length + u8 type) plus
  // payload. Cut the stream at every offset inside the header and the
  // first payload byte: offset 0 is a clean goodbye (connection error);
  // every later cut is a truncation. Never a crash, never a hang.
  std::vector<std::uint8_t> full;
  FrameBuilder b(full, MsgType::kInfo);
  b.put_u32(42);
  b.finish();
  ASSERT_GE(full.size(), 6u);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    auto [tx, rx] = net::Socket::pair();
    tx.write_all(full.data(), cut);
    tx.close();  // EOF after `cut` bytes
    if (cut == 0) {
      EXPECT_THROW((void)net::read_frame(rx), net::WireConnectionError)
          << "cut at " << cut;
    } else {
      EXPECT_THROW((void)net::read_frame(rx), net::WireTruncatedError)
          << "cut at " << cut;
    }
  }
}

TEST(WireFrame, OversizeLengthRejectedBeforeAllocation) {
  auto [tx, rx] = net::Socket::pair();
  // A hostile length prefix claiming ~4 GiB: read_frame must throw on
  // the prefix alone — no payload bytes exist to be read, so reaching
  // the allocation (or a blocking read) would hang or OOM instead.
  const std::uint32_t hostile = 0xFFFFFFF0u;
  tx.write_all(&hostile, sizeof(hostile));
  EXPECT_THROW((void)net::read_frame(rx), net::WireOversizeError);

  auto [tx2, rx2] = net::Socket::pair();
  const std::uint32_t barely_over = net::kMaxFrameBytes + 1;
  tx2.write_all(&barely_over, sizeof(barely_over));
  EXPECT_THROW((void)net::read_frame(rx2), net::WireOversizeError);
}

TEST(WireFrame, ZeroLengthFrameIsProtocolError) {
  auto [tx, rx] = net::Socket::pair();
  const std::uint32_t zero = 0;  // a frame must at least carry its type
  tx.write_all(&zero, sizeof(zero));
  EXPECT_THROW((void)net::read_frame(rx), net::WireProtocolError);
}

TEST(WireFrame, TrailingBytesAndShortPayloadAreTyped) {
  std::vector<std::uint8_t> buf;
  FrameBuilder b(buf, MsgType::kInfo);
  b.put_u32(1);
  b.finish();
  auto [tx, rx] = net::Socket::pair();
  tx.write_all(buf.data(), buf.size());
  const net::Frame frame = net::read_frame(rx);
  FrameCursor cur(frame.payload);
  // Reading more than the payload holds is a truncation of the frame's
  // own claim; leaving bytes unread is a protocol violation.
  EXPECT_THROW((void)cur.get_u64("too much"), net::WireTruncatedError);
  FrameCursor cur2(frame.payload);
  EXPECT_THROW(cur2.done("unread"), net::WireProtocolError);
}

TEST(WireFrame, BuilderRefusesOversizeFrames) {
  std::vector<std::uint8_t> buf;
  FrameBuilder b(buf, MsgType::kScreen);
  b.put_u32(16);
  // Declaring a bulk tail that would push the frame over the ceiling
  // must throw at finish() — before any of it hits the socket.
  EXPECT_THROW(b.finish(net::kMaxFrameBytes), net::WireOversizeError);
}

// ---- Handshake rejection (live server) ------------------------------------

TEST(WireHandshake, BadMagicIsTypedAndServerSurvives) {
  LiveServer live;
  {
    net::Socket sock = live.connect();
    const auto bad = hello_frame("G4IPWRONG");
    sock.write_all(bad.data(), bad.size());
    EXPECT_THROW((void)net::expect_frame(sock, MsgType::kHelloAck),
                 net::WireMagicError);
  }
  // The hostile connection closed; a well-formed client still gets in.
  net::Socket good = live.connect();
  EXPECT_NO_THROW(handshake(good));
}

TEST(WireHandshake, WrongVersionIsTyped) {
  LiveServer live;
  net::Socket sock = live.connect();
  const auto bad = hello_frame(net::kWireMagic, net::kWireVersion + 1);
  sock.write_all(bad.data(), bad.size());
  EXPECT_THROW((void)net::expect_frame(sock, MsgType::kHelloAck),
               net::WireVersionError);
}

TEST(WireHandshake, ForeignByteOrderIsTyped) {
  LiveServer live;
  net::Socket sock = live.connect();
  const auto bad = hello_frame(net::kWireMagic, net::kWireVersion,
                               __builtin_bswap32(net::kWireByteOrderMark));
  sock.write_all(bad.data(), bad.size());
  EXPECT_THROW((void)net::expect_frame(sock, MsgType::kHelloAck),
               net::WireByteOrderError);
}

TEST(WireHandshake, FingerprintMismatchIsTyped) {
  dist::ShardServerOptions options;
  options.fingerprint = "model-A";
  LiveServer live(options);
  net::Socket sock = live.connect();
  const auto bad = hello_frame(net::kWireMagic, net::kWireVersion,
                               net::kWireByteOrderMark, 0, "model-B");
  sock.write_all(bad.data(), bad.size());
  EXPECT_THROW((void)net::expect_frame(sock, MsgType::kHelloAck),
               net::WireFingerprintError);
  // An agreeing client (and one that does not claim a fingerprint at
  // all) is still welcome.  The server fronts one connection at a time,
  // so each client hangs up before the next one expects service.
  {
    net::Socket good = live.connect();
    EXPECT_NO_THROW(handshake(good, "model-A"));
  }
  net::Socket agnostic = live.connect();
  EXPECT_NO_THROW(handshake(agnostic));
}

TEST(WireHandshake, DimMismatchAgainstLoadedStoreIsTyped) {
  LiveServer live;
  {
    // First client admits a 4-float row, fixing the store's dim.
    net::Socket sock = live.connect();
    handshake(sock);
    std::vector<std::uint8_t> buf;
    FrameBuilder admit(buf, MsgType::kAdmitRows);
    admit.put_u32(4);
    admit.put_u32(1);
    admit.put_string("seed");
    const float row[4] = {1.0F, 0.0F, 0.0F, 0.0F};
    admit.put_bytes(row, sizeof(row));
    admit.finish();
    FrameBuilder info(buf, MsgType::kInfo);  // request forces the flush
    info.finish();
    sock.write_all(buf.data(), buf.size());
    const net::Frame ack = net::expect_frame(sock, MsgType::kInfoAck);
    FrameCursor cur(ack.payload);
    EXPECT_EQ(cur.get_u32("dim"), 4u);
    EXPECT_EQ(cur.get_u64("rows"), 1u);
    EXPECT_EQ(cur.get_u64("live"), 1u);
    cur.done("InfoAck");
  }
  // Second client claims dim 8 up front: typed rejection at handshake.
  net::Socket sock = live.connect();
  const auto bad = hello_frame(net::kWireMagic, net::kWireVersion,
                               net::kWireByteOrderMark, 8);
  sock.write_all(bad.data(), bad.size());
  EXPECT_THROW((void)net::expect_frame(sock, MsgType::kHelloAck),
               net::WireDimError);
}

TEST(WireHandshake, NonHelloFirstFrameIsProtocolError) {
  LiveServer live;
  net::Socket sock = live.connect();
  std::vector<std::uint8_t> buf;
  FrameBuilder b(buf, MsgType::kInfo);  // valid frame, wrong opener
  b.finish();
  sock.write_all(buf.data(), buf.size());
  EXPECT_THROW((void)net::expect_frame(sock, MsgType::kInfoAck),
               net::WireProtocolError);
}

// ---- Mid-stream failures (live server) ------------------------------------

TEST(WireStream, UnknownFrameTypeAfterHandshakeIsTyped) {
  LiveServer live;
  net::Socket sock = live.connect();
  handshake(sock);
  std::vector<std::uint8_t> buf;
  FrameBuilder b(buf, MsgType::kHelloAck);  // a server-only type
  b.finish();
  sock.write_all(buf.data(), buf.size());
  EXPECT_THROW((void)net::expect_frame(sock, MsgType::kInfoAck),
               net::WireProtocolError);
}

TEST(WireStream, TruncatedRequestGetsTypedErrorNotHang) {
  LiveServer live;
  net::Socket sock = live.connect();
  handshake(sock);
  // A frame whose length prefix promises more than ever arrives, then a
  // half-close: the server sees a mid-frame EOF, answers with the typed
  // truncation error, and closes — the client reads that error instead
  // of hanging.
  std::vector<std::uint8_t> buf;
  FrameBuilder b(buf, MsgType::kScreen);
  b.put_u32(4);
  b.finish(1024);  // declares a 1 KiB tail that never comes
  sock.write_all(buf.data(), buf.size());
  sock.shutdown_both();
  EXPECT_THROW((void)net::expect_frame(sock, MsgType::kScreenResult),
               net::WireError);
  // And the server is still alive for the next client.
  net::Socket good = live.connect();
  EXPECT_NO_THROW(handshake(good));
}

TEST(WireStream, PeerDisconnectMidResponseIsTyped) {
  // Client-side mid-stream disconnect, socketpair-harnessed so the
  // "server" can die at an exact byte offset: half a response frame,
  // then EOF.
  auto [server_end, client_end] = net::Socket::pair();
  std::vector<std::uint8_t> buf;
  FrameBuilder b(buf, MsgType::kInfoAck);
  b.put_u32(16);
  b.put_u64(100);
  b.put_u64(90);
  b.finish();
  server_end.write_all(buf.data(), buf.size() / 2);
  server_end.close();
  EXPECT_THROW((void)net::expect_frame(client_end, MsgType::kInfoAck),
               net::WireTruncatedError);
}

TEST(WireStream, CleanGoodbyeBetweenFramesIsConnectionError) {
  auto [server_end, client_end] = net::Socket::pair();
  server_end.close();  // peer gone before any frame
  EXPECT_THROW((void)net::expect_frame(client_end, MsgType::kInfoAck),
               net::WireConnectionError);
}

TEST(WireStream, ErrorFrameCarriesCodeAndMessage) {
  auto [tx, rx] = net::Socket::pair();
  std::vector<std::uint8_t> buf;
  net::build_error_frame(buf, net::WireErrorCode::kDim, "dim drift");
  tx.write_all(buf.data(), buf.size());
  try {
    (void)net::expect_frame(rx, MsgType::kInfoAck);
    FAIL() << "expected WireDimError";
  } catch (const net::WireDimError& e) {
    EXPECT_NE(std::string(e.what()).find("dim drift"), std::string::npos);
  }
}

TEST(WireStream, RecvTimeoutIsTypedNotAHang) {
  auto [tx, rx] = net::Socket::pair();
  rx.set_recv_timeout(50);  // nothing will ever arrive
  EXPECT_THROW((void)net::read_frame(rx), net::WireTimeoutError);
}

}  // namespace
}  // namespace gnn4ip
