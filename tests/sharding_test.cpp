// ShardedCorpus tests: the acceptance bar for the sharded resident
// corpus is that sharding is *invisible* to results — screen()/top_k()/
// flag() are bit-identical across {1, 2, 4} shards × {1, 2, 8} workers
// and to the single-shard PairwiseScorer reference — while placement,
// per-shard eviction budgets, and per-shard compaction behave as
// documented.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "audit/audit_service.h"
#include "core/gnn4ip.h"
#include "core/pairwise_scorer.h"
#include "core/sharded_corpus.h"
#include "data/corpus.h"
#include "util/contract.h"

namespace gnn4ip::core {
namespace {

constexpr std::size_t kNoIndex = ShardedCorpus::kNoIndex;

std::vector<train::GraphEntry> small_corpus() {
  data::RtlCorpusOptions options;
  options.instances_per_family = 2;
  options.families = {"adder", "crc8", "parity", "counter", "pwm"};
  return make_graph_entries(data::build_rtl_corpus(options));
}

/// One embedding per entry, shared by every scorer/corpus under test so
/// cross-configuration comparisons are exact.
std::vector<tensor::Matrix> embed_all(gnn::Hw2Vec& model,
                                      std::span<const train::GraphEntry> e) {
  std::vector<tensor::Matrix> out;
  out.reserve(e.size());
  for (const train::GraphEntry& entry : e) {
    out.push_back(model.embed_inference(entry.tensors));
  }
  return out;
}

TEST(ShardedCorpus, PlacementIsDeterministicAndInRange) {
  // FNV-1a of the name: a pure function — same name, same shard, on any
  // instance, in any insertion order.
  const std::vector<std::string> names = {"crc8", "uart_tx", "fifo_ctrl",
                                          "adder#1", "adder#2", ""};
  for (const std::string& name : names) {
    EXPECT_EQ(ShardedCorpus::placement(name, 1), 0u);
    for (std::size_t shards : {2u, 4u, 7u}) {
      const std::size_t s = ShardedCorpus::placement(name, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardedCorpus::placement(name, shards));
    }
  }
  EXPECT_THROW((void)ShardedCorpus::placement("x", 0),
               util::ContractViolation);
}

TEST(ShardedCorpus, AddRoutesByNameHashAndKeepsGlobalIndexSpace) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 4u);
  const auto embeddings = embed_all(model, entries);

  ShardedCorpus corpus(4);
  for (std::size_t i = 0; i < 4; ++i) {
    // Global ids are insertion-ordered regardless of shard placement.
    EXPECT_EQ(corpus.add(entries[i].name, embeddings[i]), i);
  }
  EXPECT_EQ(corpus.size(), 4u);
  EXPECT_EQ(corpus.live_count(), 4u);
  std::size_t shard_total = 0;
  for (std::size_t s = 0; s < corpus.num_shards(); ++s) {
    shard_total += corpus.shard(s).size();
  }
  EXPECT_EQ(shard_total, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(corpus.name(i), entries[i].name);
    EXPECT_EQ(corpus.shard_of(i),
              ShardedCorpus::placement(entries[i].name, 4));
    // The row behind the global id is the admitted embedding, bit-equal.
    const std::span<const float> row = corpus.row(i);
    const std::span<const float> expected = embeddings[i].data();
    ASSERT_EQ(row.size(), expected.size());
    for (std::size_t k = 0; k < row.size(); ++k) {
      EXPECT_EQ(row[k], expected[k]);
    }
  }
}

TEST(ShardedCorpus, ScoreNewRowsBitIdenticalAcrossShardAndWorkerCounts) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 8u);
  const auto embeddings = embed_all(model, entries);
  const std::size_t resident = entries.size() - 3;

  // Reference: the single-shard PairwiseScorer path.
  PairwiseScorer reference;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    reference.add(entries[i].name, embeddings[i]);
  }
  const tensor::Matrix expected = reference.score_new_rows(resident);

  for (std::size_t shards : {1u, 2u, 4u}) {
    for (std::size_t workers : {1u, 2u, 8u}) {
      ScorerOptions options;
      options.num_threads = workers;
      ShardedCorpus corpus(shards, options);
      for (std::size_t i = 0; i < entries.size(); ++i) {
        corpus.add(entries[i].name, embeddings[i]);
      }
      const tensor::Matrix scores = corpus.score_new_rows(resident);
      ASSERT_EQ(scores.rows(), expected.rows());
      ASSERT_EQ(scores.cols(), expected.cols());
      for (std::size_t r = 0; r < scores.rows(); ++r) {
        for (std::size_t c = 0; c < scores.cols(); ++c) {
          EXPECT_EQ(scores.at(r, c), expected.at(r, c))
              << shards << " shards, " << workers << " workers, cell (" << r
              << ", " << c << ")";
        }
      }
      // Spot-check the pairwise accessor against the reference too.
      EXPECT_EQ(corpus.score(0, resident), reference.score(0, resident));
    }
  }
}

TEST(ShardedCorpus, TopKAndFlagBitIdenticalAcrossShardAndWorkerCounts) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const auto embeddings = embed_all(model, entries);

  PairwiseScorer reference;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    reference.add(entries[i].name, embeddings[i]);
  }
  // Remove one row so live-row filtering is exercised by the merge.
  reference.remove(1);
  const std::vector<PairScore> expected_top = reference.top_k(0, 5);
  const std::vector<PairScore> expected_flagged = reference.flag(-0.5F);
  ASSERT_FALSE(expected_top.empty());
  ASSERT_FALSE(expected_flagged.empty());

  for (std::size_t shards : {1u, 2u, 4u}) {
    for (std::size_t workers : {1u, 2u, 8u}) {
      ScorerOptions options;
      options.num_threads = workers;
      ShardedCorpus corpus(shards, options);
      for (std::size_t i = 0; i < entries.size(); ++i) {
        corpus.add(entries[i].name, embeddings[i]);
      }
      corpus.remove(1);

      const std::vector<PairScore> top = corpus.top_k(0, 5);
      ASSERT_EQ(top.size(), expected_top.size());
      for (std::size_t i = 0; i < top.size(); ++i) {
        EXPECT_EQ(top[i].a, expected_top[i].a);
        EXPECT_EQ(top[i].b, expected_top[i].b);
        EXPECT_EQ(top[i].similarity, expected_top[i].similarity);
      }

      const std::vector<PairScore> flagged = corpus.flag(-0.5F);
      ASSERT_EQ(flagged.size(), expected_flagged.size());
      for (std::size_t i = 0; i < flagged.size(); ++i) {
        EXPECT_EQ(flagged[i].a, expected_flagged[i].a);
        EXPECT_EQ(flagged[i].b, expected_flagged[i].b);
        EXPECT_EQ(flagged[i].similarity, expected_flagged[i].similarity);
      }
    }
  }
}

TEST(ShardedCorpus, CompactRenumbersDenselyInInsertionOrderPerShard) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 6u);
  const auto embeddings = embed_all(model, entries);

  ShardedCorpus corpus(3);
  for (std::size_t i = 0; i < 6; ++i) {
    corpus.add(entries[i].name, embeddings[i]);
  }
  corpus.remove(0);
  corpus.remove(3);
  EXPECT_EQ(corpus.live_count(), 4u);

  const std::vector<std::size_t> mapping = corpus.compact();
  ASSERT_EQ(mapping.size(), 6u);
  EXPECT_EQ(mapping[0], kNoIndex);
  EXPECT_EQ(mapping[3], kNoIndex);
  // Survivors renumber densely in insertion order — the same mapping a
  // single-shard compact() yields, for any shard count.
  EXPECT_EQ(mapping[1], 0u);
  EXPECT_EQ(mapping[2], 1u);
  EXPECT_EQ(mapping[4], 2u);
  EXPECT_EQ(mapping[5], 3u);
  EXPECT_EQ(corpus.size(), 4u);
  EXPECT_EQ(corpus.live_count(), 4u);
  // Names, rows, and shard placement survive the per-shard remap.
  const std::size_t old_ids[] = {1, 2, 4, 5};
  for (std::size_t n = 0; n < 4; ++n) {
    const std::size_t old_id = old_ids[n];
    EXPECT_EQ(corpus.name(n), entries[old_id].name);
    EXPECT_EQ(corpus.shard_of(n),
              ShardedCorpus::placement(entries[old_id].name, 3));
    const std::span<const float> row = corpus.row(n);
    const std::span<const float> expected = embeddings[old_id].data();
    ASSERT_EQ(row.size(), expected.size());
    for (std::size_t k = 0; k < row.size(); ++k) {
      EXPECT_EQ(row[k], expected[k]);
    }
  }
  // And scoring still works against the compacted numbering.
  EXPECT_EQ(corpus.score(0, 1),
            cosine_pair(embeddings[1].data(), embeddings[2].data()));
}

TEST(ShardedCorpus, RejectsMismatchedDimsAndBadIndices) {
  ShardedCorpus corpus(2);
  tensor::Matrix a(1, 4, 0.5F);
  tensor::Matrix b(1, 3, 0.5F);
  (void)corpus.add("a", a);
  EXPECT_THROW((void)corpus.add("b", b), util::ContractViolation);
  EXPECT_THROW((void)corpus.name(7), util::ContractViolation);
  EXPECT_THROW((void)corpus.row(7), util::ContractViolation);
  EXPECT_THROW(corpus.remove(7), util::ContractViolation);
  EXPECT_THROW((void)corpus.shard(5), util::ContractViolation);
  EXPECT_THROW(ShardedCorpus(0), util::ContractViolation);
}

}  // namespace
}  // namespace gnn4ip::core

namespace gnn4ip::audit {
namespace {

std::vector<train::GraphEntry> audit_corpus() {
  data::RtlCorpusOptions options;
  options.instances_per_family = 2;
  options.families = {"adder", "crc8", "parity", "counter", "pwm"};
  return make_graph_entries(data::build_rtl_corpus(options));
}

TEST(ShardedAudit, ScreenReportsBitIdenticalAcrossShardAndWorkerCounts) {
  // The end-to-end acceptance bar: the full ScreenReport stream —
  // acceptance, corpus indices, verdict sets, similarities, best
  // matches — is equal for every shard count × worker count.
  gnn::Hw2Vec model;
  const auto entries = audit_corpus();
  ASSERT_GE(entries.size(), 8u);
  const std::size_t library = 5;

  std::vector<std::vector<ScreenReport>> runs;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const std::size_t workers : {1u, 2u, 8u}) {
      AuditOptions options;
      options.num_shards = shards;
      options.scorer.num_threads = workers;
      options.scorer.delta = -2.0F;  // every resident match is a verdict
      AuditService service(model, options);
      for (std::size_t i = 0; i < library; ++i) {
        ASSERT_TRUE(service.add_library(entries[i]).accepted);
      }
      for (std::size_t i = library; i < entries.size(); ++i) {
        ASSERT_TRUE(service.submit(entries[i]));
      }
      runs.push_back(service.screen());
    }
  }

  const std::vector<ScreenReport>& reference = runs.front();
  ASSERT_EQ(reference.size(), entries.size() - library);
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), reference.size()) << "run " << run;
    for (std::size_t r = 0; r < reference.size(); ++r) {
      const ScreenReport& got = runs[run][r];
      const ScreenReport& want = reference[r];
      EXPECT_EQ(got.submission.name, want.submission.name);
      EXPECT_EQ(got.submission.accepted, want.submission.accepted);
      EXPECT_EQ(got.submission.corpus_index, want.submission.corpus_index);
      ASSERT_EQ(got.verdicts.size(), want.verdicts.size());
      for (std::size_t v = 0; v < want.verdicts.size(); ++v) {
        EXPECT_EQ(got.verdicts[v].matched, want.verdicts[v].matched);
        EXPECT_EQ(got.verdicts[v].corpus_index,
                  want.verdicts[v].corpus_index);
        EXPECT_EQ(got.verdicts[v].similarity, want.verdicts[v].similarity);
        EXPECT_EQ(got.verdicts[v].flagged, want.verdicts[v].flagged);
      }
      ASSERT_EQ(got.best.has_value(), want.best.has_value());
      if (want.best) {
        EXPECT_EQ(got.best->matched, want.best->matched);
        EXPECT_EQ(got.best->similarity, want.best->similarity);
      }
    }
  }
}

TEST(ShardedAudit, TopKBitIdenticalAcrossShardCounts) {
  gnn::Hw2Vec model;
  const auto entries = audit_corpus();
  ASSERT_GE(entries.size(), 6u);

  std::vector<std::vector<Verdict>> runs;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    AuditOptions options;
    options.num_shards = shards;
    options.scorer.delta = -2.0F;
    AuditService service(model, options);
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(service.add_library(entries[i]).accepted);
    }
    runs.push_back(service.top_k(entries[0].name, 4));
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[run][i].matched, runs[0][i].matched);
      EXPECT_EQ(runs[run][i].corpus_index, runs[0][i].corpus_index);
      EXPECT_EQ(runs[run][i].similarity, runs[0][i].similarity);
    }
  }
}

TEST(ShardedAudit, PerShardBudgetEvictsOnlyTheHotShard) {
  gnn::Hw2Vec model;
  const auto entries = audit_corpus();
  ASSERT_GE(entries.size(), 8u);

  AuditOptions options;
  options.num_shards = 2;
  options.shard_budget = 2;
  options.scorer.delta = -2.0F;
  AuditService service(model, options);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.submit(entries[i]));
  }
  (void)service.screen();

  // Every shard ends within budget, and exactly the over-budget shards
  // shrank: total resident = sum of min(placed, budget).
  std::size_t expected_resident = 0;
  std::vector<std::size_t> placed(2, 0);
  for (std::size_t i = 0; i < 8; ++i) {
    ++placed[core::ShardedCorpus::placement(entries[i].name, 2)];
  }
  for (std::size_t s = 0; s < 2; ++s) {
    expected_resident += std::min<std::size_t>(placed[s], 2);
    EXPECT_LE(service.corpus().shard_live_count(s), 2u);
  }
  EXPECT_EQ(service.resident(), expected_resident);
  EXPECT_EQ(service.corpus().shard_budget(), 2u);
}

TEST(ShardedAudit, PinnedEntriesExemptFromShardBudget) {
  gnn::Hw2Vec model;
  const auto entries = audit_corpus();
  ASSERT_GE(entries.size(), 6u);

  AuditOptions options;
  options.num_shards = 1;  // one shard: the budget bites immediately
  options.shard_budget = 1;
  AuditService service(model, options);
  // Three pinned library entries in a shard budgeted for one: the
  // budget can never evict them.
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.add_library(entries[i]).accepted);
  }
  EXPECT_EQ(service.resident(), 3u);

  // A screened (unpinned) submission is evicted straight away.
  ASSERT_TRUE(service.submit(entries[3]));
  const std::vector<ScreenReport> reports = service.screen();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].submission.accepted);
  EXPECT_EQ(reports[0].submission.corpus_index,
            core::ShardedCorpus::kNoIndex);
  EXPECT_EQ(service.resident(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(service.contains(entries[i].name));
  }
}

TEST(ShardedAudit, EvictionAndResubmissionKeepNameIndexConsistent) {
  // Drive several screen→evict→compact cycles over a sharded corpus and
  // check the service's name index tracks the global remapping.
  gnn::Hw2Vec model;
  const auto entries = audit_corpus();
  ASSERT_GE(entries.size(), 8u);

  AuditOptions options;
  options.num_shards = 4;
  options.max_resident = 3;
  options.scorer.delta = -2.0F;
  AuditService service(model, options);
  for (std::size_t round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(service.submit(entries[i]));
      (void)service.screen();
    }
  }
  EXPECT_EQ(service.resident(), 3u);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t index = service.index_of(entries[i].name);
    if (index == core::ShardedCorpus::kNoIndex) continue;
    EXPECT_EQ(service.name(index), entries[i].name);
    ++checked;
  }
  EXPECT_EQ(checked, 3u);
}

}  // namespace
}  // namespace gnn4ip::audit
