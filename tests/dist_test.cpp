// Distributed-corpus tests: the acceptance bar is that distribution is
// *invisible* to results — a DistCorpus fronting {1, 2, 3} shard-server
// processes produces screen()/top_k()/flag() output bit-identical to
// the in-process ShardedCorpus with the same shard count (which
// sharding_test already proves bit-identical to the single-shard
// reference), with and without the int8 prefilter, through mutation
// churn (remove/compact), snapshot round trips in both directions, and
// the full AuditService end to end. Servers here are real ShardServer
// instances on ephemeral loopback ports — the same bytes-over-TCP path
// production takes, minus process isolation.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "audit/audit_service.h"
#include "core/gnn4ip.h"
#include "core/sharded_corpus.h"
#include "data/corpus.h"
#include "dist/dist_corpus.h"
#include "dist/shard_server.h"
#include "gnn/model_io.h"
#include "net/wire_format.h"

namespace gnn4ip {
namespace {

using core::PairScore;
using core::ScreenRow;

std::vector<train::GraphEntry> small_corpus() {
  data::RtlCorpusOptions options;
  options.instances_per_family = 2;
  options.families = {"adder", "crc8", "parity", "counter", "pwm"};
  return make_graph_entries(data::build_rtl_corpus(options));
}

std::vector<tensor::Matrix> embed_all(gnn::Hw2Vec& model,
                                      std::span<const train::GraphEntry> e) {
  std::vector<tensor::Matrix> out;
  out.reserve(e.size());
  for (const train::GraphEntry& entry : e) {
    out.push_back(model.embed_inference(entry.tensors));
  }
  return out;
}

/// N shard servers on ephemeral loopback ports, each serving on its own
/// thread until the fixture dies.
struct Cluster {
  explicit Cluster(std::size_t count, dist::ShardServerOptions options = {}) {
    options.poll_ms = 20;
    for (std::size_t s = 0; s < count; ++s) {
      servers.push_back(
          std::make_unique<dist::ShardServer>(0, options));
    }
    for (auto& server : servers) {
      threads.emplace_back([&server] { server->serve(); });
    }
  }
  ~Cluster() {
    for (auto& server : servers) server->stop();
    for (std::thread& t : threads) t.join();
  }
  [[nodiscard]] std::vector<dist::Endpoint> endpoints() const {
    std::vector<dist::Endpoint> eps;
    for (const auto& server : servers) {
      eps.push_back({"127.0.0.1", server->port()});
    }
    return eps;
  }

  std::vector<std::unique_ptr<dist::ShardServer>> servers;
  std::vector<std::thread> threads;
};

void expect_rows_equal(const std::vector<ScreenRow>& got,
                       const std::vector<ScreenRow>& want,
                       bool compare_rescored, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t r = 0; r < want.size(); ++r) {
    ASSERT_EQ(got[r].flagged.size(), want[r].flagged.size())
        << label << " row " << r;
    for (std::size_t f = 0; f < want[r].flagged.size(); ++f) {
      EXPECT_EQ(got[r].flagged[f].index, want[r].flagged[f].index)
          << label << " row " << r;
      EXPECT_EQ(got[r].flagged[f].similarity, want[r].flagged[f].similarity)
          << label << " row " << r;
    }
    ASSERT_EQ(got[r].best.has_value(), want[r].best.has_value())
        << label << " row " << r;
    if (want[r].best) {
      EXPECT_EQ(got[r].best->index, want[r].best->index)
          << label << " row " << r;
      EXPECT_EQ(got[r].best->similarity, want[r].best->similarity)
          << label << " row " << r;
    }
    EXPECT_EQ(got[r].scanned, want[r].scanned) << label << " row " << r;
    if (compare_rescored) {
      // Exact path only: under the prefilter the distributed band
      // resolution seeds from the shard-local best, so the *diagnostic*
      // rescore tally may differ while the verdict set cannot.
      EXPECT_EQ(got[r].rescored, want[r].rescored) << label << " row " << r;
    }
  }
}

void expect_pairs_equal(const std::vector<PairScore>& got,
                        const std::vector<PairScore>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].a, want[i].a) << label << " #" << i;
    EXPECT_EQ(got[i].b, want[i].b) << label << " #" << i;
    EXPECT_EQ(got[i].similarity, want[i].similarity) << label << " #" << i;
  }
}

std::string snapshot_dir(const std::string& leaf) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "gnn4ip_dist_test" / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

TEST(DistCorpus, ParseEndpointsAcceptsListsRejectsGarbage) {
  const auto eps = dist::parse_endpoints("127.0.0.1:9001,localhost:80");
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].host, "127.0.0.1");
  EXPECT_EQ(eps[0].port, 9001);
  EXPECT_EQ(eps[1].host, "localhost");
  EXPECT_EQ(eps[1].port, 80);
  EXPECT_THROW((void)dist::parse_endpoints(""), net::WireConnectionError);
  EXPECT_THROW((void)dist::parse_endpoints("hostonly"),
               net::WireConnectionError);
  EXPECT_THROW((void)dist::parse_endpoints("host:"),
               net::WireConnectionError);
  EXPECT_THROW((void)dist::parse_endpoints(":80"), net::WireConnectionError);
  EXPECT_THROW((void)dist::parse_endpoints("host:0"),
               net::WireConnectionError);
  EXPECT_THROW((void)dist::parse_endpoints("host:70000"),
               net::WireConnectionError);
  EXPECT_THROW((void)dist::parse_endpoints("host:12x"),
               net::WireConnectionError);
}

TEST(DistCorpus, ConnectRefusesDeadAndNonEmptyServers) {
  EXPECT_THROW((void)dist::DistCorpus::connect({{"127.0.0.1", 1}}, ""),
               net::WireConnectionError);

  Cluster cluster(1);
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const auto embeddings = embed_all(model, entries);
  auto first = dist::DistCorpus::connect(cluster.endpoints(), "fp");
  ASSERT_EQ(first->add(entries[0].name, embeddings[0]), 0u);
  // Hang up so the single-front-end server can service the next
  // connection; the buffered admission flushes on the way out.
  first.reset();
  // A second fresh corpus must refuse the now-populated server...
  EXPECT_THROW((void)dist::DistCorpus::connect(cluster.endpoints(), "fp"),
               net::WireProtocolError);
  // ...and a fingerprint disagreement is its own typed refusal.
  EXPECT_THROW((void)dist::DistCorpus::connect(cluster.endpoints(), "other",
                                               {}, 0, true),
               net::WireFingerprintError);
}

TEST(DistCorpus, MirrorsIndexSpaceAndPlacement) {
  Cluster cluster(3);
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 6u);
  const auto embeddings = embed_all(model, entries);

  auto corpus = dist::DistCorpus::connect(cluster.endpoints(), "fp");
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(corpus->add(entries[i].name, embeddings[i]), i);
  }
  EXPECT_EQ(corpus->size(), 6u);
  EXPECT_EQ(corpus->live_count(), 6u);
  EXPECT_EQ(corpus->num_shards(), 3u);
  std::size_t shard_total = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    shard_total += corpus->shard_live_count(s);
  }
  EXPECT_EQ(shard_total, 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(corpus->name(i), entries[i].name);
    EXPECT_EQ(corpus->shard_of(i),
              core::ShardedCorpus::placement(entries[i].name, 3));
    EXPECT_TRUE(corpus->live(i));
  }
  corpus->remove(1);
  EXPECT_FALSE(corpus->live(1));
  EXPECT_EQ(corpus->live_count(), 5u);
}

TEST(DistCorpus, ScreenTopKFlagBitIdenticalToInProcess) {
  // The tentpole grid: {1, 2, 3} shard servers × prefilter {off, on},
  // verdicts compared cell by cell against the in-process ShardedCorpus
  // with the same shard count — including through a tombstone.
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 8u);
  const auto embeddings = embed_all(model, entries);
  const std::size_t resident = entries.size() - 3;

  for (const std::size_t shards : {1u, 2u, 3u}) {
    for (const bool prefilter : {false, true}) {
      core::ScorerOptions options;
      options.int8_prefilter = prefilter;
      const std::string label = std::to_string(shards) + " shards, prefilter " +
                                (prefilter ? "on" : "off");

      core::ShardedCorpus reference(shards, options);
      Cluster cluster(shards);
      auto corpus =
          dist::DistCorpus::connect(cluster.endpoints(), "fp", options);
      for (std::size_t i = 0; i < entries.size(); ++i) {
        ASSERT_EQ(corpus->add(entries[i].name, embeddings[i]),
                  reference.add(entries[i].name, embeddings[i]));
      }
      reference.remove(1);
      corpus->remove(1);

      expect_rows_equal(corpus->screen_new_rows(resident, -0.25F),
                        reference.screen_new_rows(resident, -0.25F),
                        /*compare_rescored=*/!prefilter, label);
      expect_pairs_equal(corpus->top_k(0, 5), reference.top_k(0, 5), label);
      expect_pairs_equal(corpus->flag(-0.5F), reference.flag(-0.5F), label);
      EXPECT_EQ(corpus->score(0, 2), reference.score(0, 2)) << label;

      // Compact churns every local index; the renumbering and every
      // post-compact result must still agree.
      EXPECT_EQ(corpus->compact(), reference.compact())
          << label << " (compact mapping)";
      expect_rows_equal(corpus->screen_new_rows(resident - 1, -0.25F),
                        reference.screen_new_rows(resident - 1, -0.25F),
                        /*compare_rescored=*/!prefilter,
                        label + " (post-compact)");
      expect_pairs_equal(corpus->flag(-0.5F), reference.flag(-0.5F),
                         label + " (post-compact)");
    }
  }
}

TEST(DistCorpus, SnapshotRoundTripsBothDirections) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 6u);
  const auto embeddings = embed_all(model, entries);

  // Write from the distributed corpus (each server writes its own shard
  // file, the front end writes the manifest)...
  const std::string dir = snapshot_dir("dist_to_inproc");
  {
    Cluster cluster(2);
    auto corpus = dist::DistCorpus::connect(cluster.endpoints(), "fp");
    for (std::size_t i = 0; i < 6; ++i) {
      corpus->add(entries[i].name, embeddings[i]);
    }
    corpus->remove(2);  // tombstones must survive the trip
    corpus->save(dir, "fp");
  }
  // ...restore in-process and compare verdicts against a straight build.
  core::ShardedCorpus restored(2);
  restored.restore(dir, "fp");
  core::ShardedCorpus straight(2);
  for (std::size_t i = 0; i < 6; ++i) {
    straight.add(entries[i].name, embeddings[i]);
  }
  straight.remove(2);
  EXPECT_EQ(restored.size(), straight.size());
  EXPECT_EQ(restored.live_count(), straight.live_count());
  expect_pairs_equal(restored.flag(-0.5F), straight.flag(-0.5F),
                     "dist->inproc");

  // And back: an in-process snapshot restored into a distributed corpus
  // (cold servers — the reset-and-push path).
  const std::string dir2 = snapshot_dir("inproc_to_dist");
  straight.save(dir2, "fp");
  Cluster cluster(2);
  auto fresh = dist::DistCorpus::connect(cluster.endpoints(), "fp");
  auto adopted = fresh->restored(dir2, "fp");
  EXPECT_EQ(adopted->size(), straight.size());
  EXPECT_EQ(adopted->live_count(), straight.live_count());
  EXPECT_FALSE(adopted->live(2));
  expect_pairs_equal(adopted->flag(-0.5F), straight.flag(-0.5F),
                     "inproc->dist");
  expect_pairs_equal(adopted->top_k(0, 4), straight.top_k(0, 4),
                     "inproc->dist top_k");
}

TEST(DistCorpus, UnreconciledServersRefuseUseUntilRestore) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const auto embeddings = embed_all(model, entries);

  // Populate one server, snapshot, then reconnect with allow_resident:
  // every operation must refuse until restored() reconciles.
  const std::string dir = snapshot_dir("unreconciled");
  Cluster cluster(1);
  {
    auto corpus = dist::DistCorpus::connect(cluster.endpoints(), "fp");
    for (std::size_t i = 0; i < 4; ++i) {
      corpus->add(entries[i].name, embeddings[i]);
    }
    corpus->save(dir, "fp");
  }
  auto raw = dist::DistCorpus::connect(cluster.endpoints(), "fp", {}, 0,
                                       /*allow_resident=*/true);
  EXPECT_THROW((void)raw->add("x", embeddings[0]), net::WireProtocolError);
  EXPECT_THROW((void)raw->flag(-0.5F), net::WireProtocolError);
  EXPECT_THROW(raw->save(snapshot_dir("refused"), "fp"),
               net::WireProtocolError);
  // restored() reconciles — here by adopting the resident rows without
  // a push (the tallies match the snapshot).
  auto adopted = raw->restored(dir, "fp");
  EXPECT_EQ(adopted->size(), 4u);
  core::ShardedCorpus straight(1);
  for (std::size_t i = 0; i < 4; ++i) {
    straight.add(entries[i].name, embeddings[i]);
  }
  expect_pairs_equal(adopted->flag(-0.5F), straight.flag(-0.5F), "adopted");
}

TEST(DistAudit, ScreenReportsBitIdenticalToInProcess) {
  // End to end through AuditService: the full ScreenReport stream and
  // post-screen top_k from a service backed by remote shard servers
  // equal the in-process service's, for the same shard count.
  gnn::Hw2Vec model;
  const std::string fingerprint = gnn::model_fingerprint(model);
  const auto entries = small_corpus();
  ASSERT_GE(entries.size(), 8u);
  const std::size_t library = 5;

  audit::AuditOptions options;
  options.num_shards = 2;
  options.scorer.delta = -2.0F;  // every resident match is a verdict

  audit::AuditService reference(model, options);
  Cluster cluster(2);
  audit::AuditService distributed(
      model, options,
      dist::DistCorpus::connect(cluster.endpoints(), fingerprint,
                                options.scorer));

  for (std::size_t i = 0; i < library; ++i) {
    ASSERT_TRUE(reference.add_library(entries[i]).accepted);
    ASSERT_TRUE(distributed.add_library(entries[i]).accepted);
  }
  for (std::size_t i = library; i < entries.size(); ++i) {
    ASSERT_TRUE(reference.submit(entries[i]));
    ASSERT_TRUE(distributed.submit(entries[i]));
  }
  const std::vector<audit::ScreenReport> want = reference.screen();
  const std::vector<audit::ScreenReport> got = distributed.screen();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got[r].submission.name, want[r].submission.name);
    EXPECT_EQ(got[r].submission.corpus_index, want[r].submission.corpus_index);
    ASSERT_EQ(got[r].verdicts.size(), want[r].verdicts.size());
    for (std::size_t v = 0; v < want[r].verdicts.size(); ++v) {
      EXPECT_EQ(got[r].verdicts[v].matched, want[r].verdicts[v].matched);
      EXPECT_EQ(got[r].verdicts[v].corpus_index,
                want[r].verdicts[v].corpus_index);
      EXPECT_EQ(got[r].verdicts[v].similarity,
                want[r].verdicts[v].similarity);
    }
    ASSERT_EQ(got[r].best.has_value(), want[r].best.has_value());
    if (want[r].best) {
      EXPECT_EQ(got[r].best->matched, want[r].best->matched);
      EXPECT_EQ(got[r].best->similarity, want[r].best->similarity);
    }
  }
  const auto want_top = reference.top_k(entries[0].name, 4);
  const auto got_top = distributed.top_k(entries[0].name, 4);
  ASSERT_EQ(got_top.size(), want_top.size());
  for (std::size_t i = 0; i < want_top.size(); ++i) {
    EXPECT_EQ(got_top[i].matched, want_top[i].matched);
    EXPECT_EQ(got_top[i].similarity, want_top[i].similarity);
  }
}

TEST(DistCorpus, ServerDeathMidConversationIsTypedNotAHang) {
  gnn::Hw2Vec model;
  const auto entries = small_corpus();
  const auto embeddings = embed_all(model, entries);

  auto cluster = std::make_unique<Cluster>(2);
  auto corpus = dist::DistCorpus::connect(cluster->endpoints(), "fp");
  for (std::size_t i = 0; i < 4; ++i) {
    corpus->add(entries[i].name, embeddings[i]);
  }
  ASSERT_FALSE(corpus->flag(-0.5F).empty());
  // Kill both servers (stop + connection teardown), then screen: the
  // dead cluster must surface as a typed WireError, never a hang.
  cluster.reset();
  EXPECT_THROW((void)corpus->flag(-0.5F), net::WireError);
}

}  // namespace
}  // namespace gnn4ip
