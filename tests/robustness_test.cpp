// Robustness sweep: randomly mutated Verilog sources must either parse
// or raise verilog::ParseError — never crash, hang, or throw anything
// else. The DFG pipeline on top gets the same guarantee (ParseError or
// a valid graph).
#include <gtest/gtest.h>

#include <string>

#include "data/rtl_designs.h"
#include "dfg/pipeline.h"
#include "graph/algorithms.h"
#include "util/rng.h"
#include "verilog/parser.h"

namespace gnn4ip {
namespace {

const std::string& seed_source() {
  static const std::string src = data::gen_uart_tx({0, 1});
  return src;
}

std::string mutate(const std::string& source, util::Rng& rng,
                   int mutations) {
  std::string out = source;
  static const char kChars[] =
      "abcdefgXYZ0189_;:,.(){}[]<>=+-*/&|^~!?@#'\"\\ \n";
  for (int m = 0; m < mutations; ++m) {
    if (out.empty()) break;
    const std::size_t pos = rng.next_below(out.size());
    switch (rng.next_below(3)) {
      case 0:  // replace
        out[pos] = kChars[rng.next_below(sizeof(kChars) - 1)];
        break;
      case 1:  // delete
        out.erase(pos, 1);
        break;
      default:  // insert
        out.insert(pos, 1, kChars[rng.next_below(sizeof(kChars) - 1)]);
        break;
    }
  }
  return out;
}

class MutationTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationTest, ParserNeverCrashes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const int mutations = 1 + GetParam() % 8;
  const std::string mutated = mutate(seed_source(), rng, mutations);
  try {
    const verilog::Design d = verilog::parse(mutated);
    EXPECT_GE(d.modules.size(), 0u);  // parsed fine — also acceptable
  } catch (const verilog::ParseError&) {
    // expected failure mode
  }
  // Anything else (ContractViolation, bad_alloc, segfault) fails the test.
}

TEST_P(MutationTest, PipelineNeverCrashes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1031 + 7);
  const int mutations = 1 + GetParam() % 5;
  const std::string mutated = mutate(seed_source(), rng, mutations);
  try {
    const graph::Digraph g = dfg::extract_dfg(mutated);
    EXPECT_GT(g.num_nodes(), 0u);
  } catch (const verilog::ParseError&) {
    // expected failure mode
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationTest, ::testing::Range(0, 25));

// Whole-corpus sanity: every generated source across a spread of seeds
// round-trips through preprocess+lex (structure-level smoke, cheap).
TEST(Robustness, EveryFamilyLexesAtManySeeds) {
  for (const data::RtlFamily& family : data::rtl_families()) {
    for (std::uint64_t seed = 100; seed < 104; ++seed) {
      const std::string src =
          family.generate({static_cast<int>(seed % family.num_styles),
                           seed});
      EXPECT_NO_THROW({
        const auto tokens = verilog::lex(verilog::preprocess(src));
        EXPECT_GT(tokens.size(), 20u) << family.name;
      }) << family.name << " seed " << seed;
    }
  }
}

// Deep-but-valid nesting: expression parser must handle heavy
// parenthesization without blowing the stack at sane depths.
TEST(Robustness, DeepExpressionNesting) {
  std::string expr = "a";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " ^ b)";
  const std::string src = "module m (input a, input b, output y);\n"
                          "  assign y = " + expr + ";\nendmodule\n";
  const graph::Digraph g = dfg::extract_dfg(src);
  EXPECT_GT(g.num_nodes(), 200u);
}

TEST(Robustness, ManyModulesManyInstances) {
  // 40 modules chained through instantiation still elaborate fine.
  std::string src;
  src += "module stage0 (input x, output y);\n  assign y = ~x;\nendmodule\n";
  for (int i = 1; i < 40; ++i) {
    src += "module stage" + std::to_string(i) +
           " (input x, output y);\n  wire t;\n  stage" +
           std::to_string(i - 1) +
           " u (.x(x), .y(t));\n  assign y = ~t;\nendmodule\n";
  }
  const graph::Digraph g = dfg::extract_dfg(src);
  EXPECT_GT(g.num_nodes(), 80u);
  EXPECT_EQ(graph::num_weak_components(g), 1);
}

TEST(Robustness, EmptyAndWhitespaceOnlySources) {
  EXPECT_NO_THROW(verilog::parse(""));
  EXPECT_NO_THROW(verilog::parse("\n\n  \t\n// just a comment\n"));
  EXPECT_THROW(dfg::extract_dfg(""), verilog::ParseError);
}

}  // namespace
}  // namespace gnn4ip
