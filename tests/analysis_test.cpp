// PCA, t-SNE, and cluster-statistics tests.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/cluster_stats.h"
#include "analysis/pca.h"
#include "analysis/tsne.h"
#include "util/contract.h"
#include "util/rng.h"

namespace gnn4ip::analysis {
namespace {

/// Two Gaussian blobs in D dims separated along the first axis.
tensor::Matrix two_blobs(std::size_t per_cluster, std::size_t dims,
                         double separation, std::vector<int>* labels,
                         std::uint64_t seed = 1) {
  util::Rng rng(seed);
  tensor::Matrix x(2 * per_cluster, dims);
  labels->clear();
  for (std::size_t i = 0; i < 2 * per_cluster; ++i) {
    const int cluster = i < per_cluster ? 0 : 1;
    labels->push_back(cluster);
    for (std::size_t c = 0; c < dims; ++c) {
      double v = rng.normal() * 0.5;
      if (c == 0) v += cluster == 0 ? 0.0 : separation;
      x.at(i, c) = static_cast<float>(v);
    }
  }
  return x;
}

TEST(Jacobi, DiagonalizesKnownMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  const tensor::Matrix a = tensor::Matrix::from_rows({{2, 1}, {1, 2}});
  tensor::Matrix v;
  auto values = jacobi_eigen(a, v);
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[0], 1.0F, 1e-4F);
  EXPECT_NEAR(values[1], 3.0F, 1e-4F);
  // Eigenvector columns orthonormal.
  for (int i = 0; i < 2; ++i) {
    float norm = 0.0F;
    for (int k = 0; k < 2; ++k) {
      norm += v.at(static_cast<std::size_t>(k), static_cast<std::size_t>(i)) *
              v.at(static_cast<std::size_t>(k), static_cast<std::size_t>(i));
    }
    EXPECT_NEAR(norm, 1.0F, 1e-4F);
  }
}

TEST(Jacobi, ReconstructsMatrix) {
  util::Rng rng(2);
  tensor::Matrix a(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i; j < 5; ++j) {
      const float v = rng.uniform(-1, 1);
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
  tensor::Matrix vecs;
  const auto values = jacobi_eigen(a, vecs);
  // A ≈ V diag(λ) Vᵀ.
  tensor::Matrix lambda(5, 5);
  for (std::size_t i = 0; i < 5; ++i) lambda.at(i, i) = values[i];
  const tensor::Matrix recon =
      tensor::matmul(tensor::matmul(vecs, lambda), tensor::transpose(vecs));
  EXPECT_LT(tensor::max_abs_diff(a, recon), 1e-3F);
}

TEST(Pca, RecoversDominantDirection) {
  // Data stretched along (1, 1)/√2: first component aligns with it.
  util::Rng rng(3);
  tensor::Matrix x(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    const float t = rng.uniform(-3, 3);
    x.at(i, 0) = t + static_cast<float>(rng.normal() * 0.05);
    x.at(i, 1) = t + static_cast<float>(rng.normal() * 0.05);
  }
  const PcaResult r = pca(x, 2);
  const float c0 = std::fabs(r.components.at(0, 0));
  const float c1 = std::fabs(r.components.at(0, 1));
  EXPECT_NEAR(c0, std::sqrt(0.5F), 0.05F);
  EXPECT_NEAR(c1, std::sqrt(0.5F), 0.05F);
  EXPECT_GT(r.explained_variance_ratio[0], 0.95F);
}

TEST(Pca, ProjectionShapesAndOrdering) {
  std::vector<int> labels;
  const tensor::Matrix x = two_blobs(20, 6, 5.0, &labels);
  const PcaResult r = pca(x, 3);
  EXPECT_EQ(r.projected.rows(), 40u);
  EXPECT_EQ(r.projected.cols(), 3u);
  EXPECT_GE(r.eigenvalues[0], r.eigenvalues[1]);
  EXPECT_GE(r.eigenvalues[1], r.eigenvalues[2]);
}

TEST(Pca, SeparatesBlobsInFirstComponent) {
  std::vector<int> labels;
  const tensor::Matrix x = two_blobs(25, 8, 6.0, &labels);
  const PcaResult r = pca(x, 2);
  // Cluster means on PC1 must be far apart relative to spread.
  tensor::Matrix pc1(50, 1);
  for (std::size_t i = 0; i < 50; ++i) pc1.at(i, 0) = r.projected.at(i, 0);
  EXPECT_GT(centroid_separation(pc1, labels), 2.0);
}

TEST(Pca, InvalidArgsRejected) {
  tensor::Matrix x(1, 4);
  EXPECT_THROW(pca(x, 2), util::ContractViolation);
  tensor::Matrix y(10, 3);
  EXPECT_THROW(pca(y, 5), util::ContractViolation);
  EXPECT_THROW(pca(y, 0), util::ContractViolation);
}

TEST(Tsne, SeparatesWellSeparatedBlobs) {
  std::vector<int> labels;
  const tensor::Matrix x = two_blobs(20, 10, 8.0, &labels, 7);
  TsneOptions options;
  options.out_dims = 2;
  options.iterations = 300;
  const tensor::Matrix y = tsne(x, options);
  EXPECT_EQ(y.rows(), 40u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_GT(nn_label_accuracy(y, labels), 0.9);
}

TEST(Tsne, ThreeDimensionalOutput) {
  std::vector<int> labels;
  const tensor::Matrix x = two_blobs(10, 5, 6.0, &labels, 9);
  TsneOptions options;
  options.iterations = 150;
  const tensor::Matrix y = tsne(x, options);
  EXPECT_EQ(y.cols(), 3u);
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Tsne, TooFewSamplesRejected) {
  tensor::Matrix x(3, 4);
  EXPECT_THROW(tsne(x), util::ContractViolation);
}

TEST(ClusterStats, SilhouetteHighForSeparated) {
  std::vector<int> labels;
  const tensor::Matrix x = two_blobs(15, 4, 10.0, &labels, 11);
  EXPECT_GT(silhouette_score(x, labels), 0.8);
}

TEST(ClusterStats, SilhouetteLowForOverlapping) {
  std::vector<int> labels;
  const tensor::Matrix x = two_blobs(15, 4, 0.1, &labels, 13);
  EXPECT_LT(silhouette_score(x, labels), 0.3);
}

TEST(ClusterStats, NnAccuracyPerfectWhenFarApart) {
  std::vector<int> labels;
  const tensor::Matrix x = two_blobs(10, 3, 20.0, &labels, 15);
  EXPECT_DOUBLE_EQ(nn_label_accuracy(x, labels), 1.0);
}

TEST(ClusterStats, RequiresTwoClusters) {
  tensor::Matrix x(4, 2);
  const std::vector<int> labels = {0, 0, 0, 0};
  EXPECT_THROW((void)silhouette_score(x, labels), util::ContractViolation);
}

}  // namespace
}  // namespace gnn4ip::analysis
