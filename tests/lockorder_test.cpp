// Runtime lock-order validator tests (src/util/lock_order.h).
//
// The death tests prove the validator actually fires: an acquisition
// that contradicts the canonical rank table must abort deterministically
// on the first inverted acquisition, with the violation named in the
// message — not deadlock probabilistically under load. The non-death
// tests prove the bookkeeping is exact (held counts through scoped
// guards, release-from-middle) so a silent run means "order respected",
// not "validator lost track".
//
// The whole file compiles to a single GTEST_SKIP when the build does
// not define GNN4IP_LOCK_ORDER (the validator is a sanitize-build
// feature; see CMakeLists.txt).
#include <gtest/gtest.h>

#include "util/lock_order.h"
#include "util/thread_annotations.h"

#ifdef GNN4IP_LOCK_ORDER

namespace {

using gnn4ip::util::LockOrderRegistry;
using gnn4ip::util::Mutex;
using gnn4ip::util::MutexLock;
using gnn4ip::util::ReaderLock;
using gnn4ip::util::SharedMutex;
namespace lock_rank = gnn4ip::util::lock_rank;

// A shard stripe acquired before the index lock — the documented
// corpus order (epoch < index < stripes) inverted. Direct lock calls,
// balanced so the static analysis is satisfied even though the unlocks
// after the abort are unreachable.
void acquire_stripe_then_index() {
  SharedMutex index{lock_rank::kIndex};
  SharedMutex stripe0{lock_rank::stripe(0)};
  stripe0.lock_shared();
  index.lock_shared();  // rank 101 under rank 110: aborts here
  index.unlock_shared();
  stripe0.unlock_shared();
}

TEST(LockOrderDeathTest, StripeBeforeIndexAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(acquire_stripe_then_index(), "LOCK ORDER VIOLATION");
}

// Equal ranks can never nest: "strictly greater" is what makes the
// order a total one (two queue-ranked locks acquired together would
// deadlock against a thread acquiring them the other way around).
void acquire_equal_rank_twice() {
  Mutex a{lock_rank::kQueue};
  Mutex b{lock_rank::kQueue};
  a.lock();
  b.lock();  // same rank as a: aborts here
  b.unlock();
  a.unlock();
}

TEST(LockOrderDeathTest, EqualRankNestingAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(acquire_equal_rank_twice(), "LOCK ORDER VIOLATION");
}

// The canonical descent — epoch, index, stripes ascending, pool — is
// silent, and every scoped guard is visible in the held count.
TEST(LockOrderTest, CanonicalDescentIsSilentAndTracked) {
  SharedMutex epoch{lock_rank::kEpoch};
  SharedMutex index{lock_rank::kIndex};
  SharedMutex stripe0{lock_rank::stripe(0)};
  SharedMutex stripe1{lock_rank::stripe(1)};
  Mutex pool{lock_rank::kPoolSpawn};

  EXPECT_EQ(LockOrderRegistry::held_count(), 0u);
  {
    ReaderLock e(epoch);
    ReaderLock i(index);
    ReaderLock s0(stripe0);
    ReaderLock s1(stripe1);
    MutexLock p(pool);
    EXPECT_EQ(LockOrderRegistry::held_count(), 5u);
  }
  EXPECT_EQ(LockOrderRegistry::held_count(), 0u);
}

// Releasing from the middle of the held stack is legal — score() drops
// the index lock before taking stripes — and must not corrupt the
// bookkeeping for the locks still held above and below it.
TEST(LockOrderTest, ReleaseFromMiddleOfStack) {
  SharedMutex epoch{lock_rank::kEpoch};
  SharedMutex index{lock_rank::kIndex};
  SharedMutex stripe0{lock_rank::stripe(0)};
  epoch.lock_shared();
  index.lock_shared();
  stripe0.lock_shared();
  EXPECT_EQ(LockOrderRegistry::held_count(), 3u);
  index.unlock_shared();
  EXPECT_EQ(LockOrderRegistry::held_count(), 2u);
  stripe0.unlock_shared();
  epoch.unlock_shared();
  EXPECT_EQ(LockOrderRegistry::held_count(), 0u);
}

// Unranked locks (default-constructed, order < 0) are invisible to the
// validator in any position.
TEST(LockOrderTest, UnrankedLocksAreIgnored) {
  Mutex ranked{lock_rank::kQueue};
  Mutex unranked;
  MutexLock r(ranked);
  const std::size_t held = LockOrderRegistry::held_count();
  MutexLock u(unranked);
  EXPECT_EQ(LockOrderRegistry::held_count(), held);
}

}  // namespace

#else  // !GNN4IP_LOCK_ORDER

TEST(LockOrderTest, DisabledInThisBuild) {
  GTEST_SKIP() << "built without GNN4IP_LOCK_ORDER; the validator and "
                  "its death tests are compiled out";
}

#endif  // GNN4IP_LOCK_ORDER
