#!/usr/bin/env python3
"""Check that every relative markdown link in the docs resolves.

Scans README.md and docs/*.md for [text](target) links, skips absolute
URLs and pure in-page anchors, and verifies each remaining target exists
relative to the file that references it. CI runs this in the format job
so a rename can never silently strand a docs pointer.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def main() -> int:
    files = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    bad = []
    checked = 0
    for md in files:
        if not md.exists():
            bad.append(f"{md.relative_to(ROOT)}: file listed but missing")
            continue
        for match in LINK.finditer(md.read_text(encoding="utf-8")):
            raw = match.group(1)
            if raw.startswith(("http://", "https://", "mailto:")):
                continue
            path = raw.split("#", 1)[0]
            if not path:  # pure in-page anchor like (#section)
                continue
            checked += 1
            if not (md.parent / path).resolve().exists():
                bad.append(f"{md.relative_to(ROOT)}: broken link -> {raw}")
    for line in bad:
        print(line, file=sys.stderr)
    if bad:
        return 1
    print(
        f"checked {checked} relative links across {len(files)} markdown "
        "files: all resolve"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
