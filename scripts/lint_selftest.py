#!/usr/bin/env python3
"""Self-test for scripts/lint_invariants.py.

The invariant lint is itself load-bearing CI — a regex that silently
stops matching re-opens the determinism/locking/wire-seam holes it
guards. This harness builds tiny synthetic `src/` trees in a temp dir
and asserts, rule by rule, that the linter fires where it must, stays
quiet where it must, and honors waivers. Run directly or via CI:

    python3 scripts/lint_selftest.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lint_invariants import Linter  # noqa: E402

FAILURES: list[str] = []


def lint_tree(files: dict[str, str]) -> Linter:
    """Materialize `files` (path -> contents) under a temp root and lint."""
    with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
        root = Path(tmp)
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
        linter = Linter(root)
        for path in sorted(root.rglob("*")):
            if path.suffix in (".h", ".cpp") and path.is_file():
                if (root / "src") in path.parents:
                    linter.lint_file(path)
        return linter


def check(name: str, files: dict[str, str], want_rules: list[str],
          want_waived: int = 0) -> None:
    linter = lint_tree(files)
    got_rules = sorted(rule for _, _, rule, _ in linter.findings)
    if got_rules != sorted(want_rules):
        FAILURES.append(
            f"{name}: findings {got_rules} != expected {sorted(want_rules)}")
    if linter.waived_count != want_waived:
        FAILURES.append(
            f"{name}: {linter.waived_count} waiver(s) != expected {want_waived}")


# ---------------------------------------------------------------- raw-lock
check("raw-lock fires on std::mutex",
      {"src/core/a.cpp": "std::mutex mu_;\n"}, ["raw-lock"])
check("raw-lock fires once per offending line",
      {"src/audit/a.cpp": "std::unique_lock<std::mutex> l(mu);\n"},
      ["raw-lock"])
check("raw-lock exempt inside the wrapper header",
      {"src/util/thread_annotations.h": "std::mutex inner_;\n"}, [])
check("raw-lock waiver on the line above",
      {"src/core/a.cpp":
       "// lint:allow(raw-lock): intentionally exercised here\n"
       "std::mutex mu_;\n"},
      [], want_waived=1)
check("raw-lock in a comment does not fire",
      {"src/core/a.cpp": "// std::mutex is banned; use util::Mutex\n"}, [])

# ------------------------------------------------------------ detach-async
check("detach-async fires on .detach()",
      {"src/util/a.cpp": "worker.detach();\n"}, ["detach-async"])
check("detach-async fires on std::async",
      {"src/core/a.cpp": "auto f = std::async(run);\n"}, ["detach-async"])

# ---------------------------------------------------------------- fp-accum
check("fp-accum fires on declared-float +=",
      {"src/core/a.cpp": "double acc = 0.0;\nacc += x;\n"}, ["fp-accum"])
check("fp-accum picks up header declarations",
      {"src/core/a.h": "  double total_ = 0.0;\n",
       "src/core/a.cpp": "total_ += x;\n"}, ["fp-accum"])
check("fp-accum exempt in the kernel files",
      {"src/core/cosine_kernels.cpp": "double acc = 0.0;\nacc += x;\n"}, [])
check("fp-accum out of scope outside core/audit",
      {"src/data/a.cpp": "double acc = 0.0;\nacc += x;\n"}, [])
check("fp-accum fires on std::accumulate",
      {"src/audit/a.cpp": "auto s = std::accumulate(v.begin(), v.end(), 0.0);\n"},
      ["fp-accum"])

# ------------------------------------------------------------ unordered-iter
check("unordered-iter fires on range-for over unordered member",
      {"src/core/a.h": "std::unordered_map<int, int> index_;\n",
       "src/core/a.cpp": "for (const auto& kv : index_) { use(kv); }\n"},
      ["unordered-iter"])
check("unordered-iter quiet for ordered containers",
      {"src/core/a.cpp":
       "std::map<int, int> index_;\n"
       "for (const auto& kv : index_) { use(kv); }\n"}, [])

# -------------------------------------------------------------- raw-socket
check("raw-socket fires on a networking header",
      {"src/core/a.cpp": "#include <sys/socket.h>\n"}, ["raw-socket"])
check("raw-socket fires on netinet/arpa/poll headers",
      {"src/audit/a.cpp":
       "#include <netinet/tcp.h>\n#include <arpa/inet.h>\n#include <poll.h>\n"},
      ["raw-socket", "raw-socket", "raw-socket"])
check("raw-socket fires on an unambiguous syscall",
      {"src/core/a.cpp": "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"},
      ["raw-socket"])
check("raw-socket fires on sendmsg/recvmsg/writev",
      {"src/dist/a.cpp": "sendmsg(fd, &msg, 0);\nwritev(fd, iov, 2);\n"},
      ["raw-socket", "raw-socket"])
check("raw-socket fires on globally-qualified short names",
      {"src/core/a.cpp": "::connect(fd, addr, len);\n::poll(&pfd, 1, 50);\n"},
      ["raw-socket", "raw-socket"])
check("raw-socket quiet on project identifiers that shadow short names",
      {"src/dist/a.cpp":
       "auto corpus = DistCorpus::connect(endpoints, fp);\n"
       "pool_.shutdown();\n"
       "listener.accept(100);\n"
       "channel->send(frame);\n"}, [])
check("raw-socket quiet on declarations of shadowing members",
      {"src/dist/a.h":
       "static std::unique_ptr<DistCorpus> connect(\n"
       "    const std::vector<Endpoint>& endpoints);\n"
       "std::optional<Socket> accept(unsigned timeout_ms);\n"}, [])
check("raw-socket exempt under src/net/",
      {"src/net/socket.cpp":
       "#include <sys/socket.h>\n"
       "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
       "::connect(fd, addr, len);\n"}, [])
check("raw-socket waivable",
      {"src/core/a.cpp":
       "// lint:allow(raw-socket): diagnostics-only, bytes never parsed\n"
       "#include <poll.h>\n"},
      [], want_waived=1)
check("raw-socket in comments and strings is inert",
      {"src/core/a.cpp":
       "// callers must never call socket(2) directly\n"
       "/* ::connect(fd, addr, len) would bypass the seam */\n"}, [])

# ------------------------------------------------------------- exit status
clean = lint_tree({"src/core/a.cpp": "int x = 0;\n"})
if clean.findings:
    FAILURES.append(f"clean tree produced findings: {clean.findings}")

if FAILURES:
    for failure in FAILURES:
        print(f"lint_selftest: FAIL {failure}")
    print(f"lint_selftest: {len(FAILURES)} failure(s)")
    sys.exit(1)
print("lint_selftest: OK (all rule checks passed)")
