#!/usr/bin/env python3
"""Concurrency/determinism invariant lint for the gnn4ip tree.

The codebase promises bit-identical verdicts for any worker count,
consumer count, shard count, and batch split (docs/ARCHITECTURE.md,
"Determinism invariants"), and routes every lock through the annotated
wrappers in src/util/thread_annotations.h so Clang's capability
analysis and the runtime lock-order validator both see it. Those are
*structural* properties — a single stray primitive or accumulation loop
silently re-opens the hole — so CI greps for the shapes that would
break them:

  raw-lock        std::mutex / std::shared_mutex / std::condition_variable
                  / std::lock_guard / std::unique_lock / std::shared_lock
                  / std::scoped_lock anywhere in src/ outside
                  src/util/thread_annotations.h. Everything must go
                  through util::Mutex/SharedMutex/CondVar and the scoped
                  guards, or it is invisible to -Wthread-safety and the
                  lock-order validator.

  fp-accum        Floating-point accumulation (`x += ...` / `x -= ...`
                  on a declared float/double, or std::accumulate /
                  std::reduce) in src/core or src/audit outside
                  cosine_kernels.* / simd_dispatch.*. FP reduction order
                  is the determinism contract's hot surface; it is
                  centralized in the kernel files where the blocked
                  fold order is pinned and tested.

  unordered-iter  Range-for over a declared unordered container in
                  src/core or src/audit. Iteration order of
                  unordered_{map,set} is unspecified; an order-dependent
                  fold over one breaks run-to-run determinism.

  detach-async    std::thread::detach() or std::async anywhere in src/.
                  Detached threads outlive quiesce/drain guarantees and
                  std::async's policy is implementation-defined; all
                  parallelism goes through util::ThreadPool.

  raw-socket      socket(2)-family syscalls or networking headers
                  (<sys/socket.h>, <netinet/*>, <arpa/*>, <poll.h>, ...)
                  anywhere in src/ outside src/net/. The wire protocol's
                  framing, typed-error taxonomy, and EOF/timeout
                  semantics live behind net::Socket — a stray sendmsg or
                  poll elsewhere bypasses the one seam the robustness
                  tests audit. Detected as unambiguous syscall names
                  (socket, setsockopt, recvmsg, ...), `::`-qualified
                  forms of the short ones (::connect, ::send, ::poll,
                  ...), and the header includes no caller can do
                  without.

Findings are suppressed by a waiver on the offending line or the line
directly above it, with a mandatory reason:

    // lint:allow(<rule>): <why this specific site is order-free/safe>

Exit status: 0 when clean, 1 with findings (one `file:line: [rule]`
line each).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

RAW_LOCK_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_)?mutex\b"
    r"|std::shared_(?:timed_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)
DETACH_RE = re.compile(r"\.\s*detach\s*\(|std::async\b")
# The socket(2) family, split by ambiguity. Long names cannot collide
# with project identifiers, so the bare call form is enough; the short
# ones (connect/send/poll/...) shadow ordinary method and factory names
# everywhere, so only the globally-qualified `::name(` form counts —
# bare calls are still caught through the header includes below, which
# no syscall user can do without.
RAW_SOCKET_UNAMBIGUOUS = (
    "socket|socketpair|accept4|setsockopt|getsockopt|getsockname"
    "|getpeername|recvmsg|sendmsg|recvfrom|sendto|writev|readv"
    "|getaddrinfo|freeaddrinfo|inet_pton|inet_ntop"
)
RAW_SOCKET_QUALIFIED_ONLY = "connect|bind|listen|accept|send|recv|poll|shutdown"
RAW_SOCKET_RE = re.compile(
    rf"(?:^|[^\w:.>])(?:{RAW_SOCKET_UNAMBIGUOUS})\s*\("
    rf"|(?<![\w>)])::\s*(?:{RAW_SOCKET_UNAMBIGUOUS}|{RAW_SOCKET_QUALIFIED_ONLY})\s*\("
    r"|#\s*include\s*<(?:sys/socket\.h|sys/un\.h|sys/uio\.h|netinet/[\w/.]+"
    r"|arpa/[\w/.]+|netdb\.h|poll\.h)>"
)
ACCUM_CALL_RE = re.compile(r"std::(?:accumulate|reduce)\b")
FP_DECL_RE = re.compile(r"\b(?:float|double)\s+(\w+)\s*(?:=|\{|;)")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+(\w+)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(\w+)\s*\)")
WAIVER_RE = re.compile(r"//\s*lint:allow\(([\w-]+)\)\s*:\s*(\S.*)")

KERNEL_EXEMPT = ("cosine_kernels", "simd_dispatch")
DETERMINISM_DIRS = ("core", "audit")


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            chunk = text[i : j + 2]
            out.append("".join(c if c == "\n" else " " for c in chunk))
            i = j + 2
        elif ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i : j + 1])
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def waivers_for(raw_lines: list[str]) -> dict[int, str]:
    """Map 0-based line number -> waived rule (self or next line)."""
    waived: dict[int, str] = {}
    for idx, line in enumerate(raw_lines):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        rule = m.group(1)
        # A waiver excuses its own line and, when it is a whole-line
        # comment, the first following line (comments stack above code).
        waived[idx] = rule
        if line.lstrip().startswith("//"):
            nxt = idx + 1
            while nxt < len(raw_lines) and raw_lines[nxt].lstrip().startswith("//"):
                nxt += 1
            waived[nxt] = rule
    return waived


class Linter:
    """Scans `<root>/src`; parameterized so the self-test can point it
    at synthetic trees (scripts/lint_selftest.py)."""

    def __init__(self, root: Path = ROOT) -> None:
        self.root = root
        self.src = root / "src"
        self.findings: list[tuple[Path, int, str, str]] = []
        self.waived_count = 0

    def report(
        self,
        path: Path,
        lineno: int,
        rule: str,
        message: str,
        waived: dict[int, str],
    ) -> None:
        if waived.get(lineno) == rule:
            self.waived_count += 1
            return
        self.findings.append((path, lineno + 1, rule, message))

    def lint_file(self, path: Path) -> None:
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.splitlines()
        code_lines = strip_comments(raw).splitlines()
        waived = waivers_for(raw_lines)
        rel = path.relative_to(self.root)
        in_net = rel.parts[:2] == ("src", "net")
        in_determinism_scope = (
            path.parent.name in DETERMINISM_DIRS
            and not path.name.startswith(KERNEL_EXEMPT)
        )

        is_wrapper_header = rel == Path("src/util/thread_annotations.h")
        code_text = "\n".join(code_lines)
        # Members iterated in a .cpp are declared in its header — scan
        # the companion header's declarations too, or every guarded
        # member container is invisible to the rule.
        decl_text = code_text
        if path.suffix == ".cpp":
            header = path.with_suffix(".h")
            if header.is_file():
                decl_text += "\n" + strip_comments(
                    header.read_text(encoding="utf-8")
                )
        fp_names = set(FP_DECL_RE.findall(decl_text)) if in_determinism_scope else set()
        unordered_names = (
            set(UNORDERED_DECL_RE.findall(decl_text)) if in_determinism_scope else set()
        )
        fp_accum_re = (
            re.compile(r"\b(" + "|".join(map(re.escape, sorted(fp_names))) + r")\s*[+-]=")
            if fp_names
            else None
        )

        for idx, line in enumerate(code_lines):
            if not is_wrapper_header and RAW_LOCK_RE.search(line):
                self.report(
                    path, idx, "raw-lock",
                    "raw standard-library lock primitive; use util::Mutex/"
                    "SharedMutex/CondVar + scoped guards from "
                    "src/util/thread_annotations.h",
                    waived,
                )
            if DETACH_RE.search(line):
                self.report(
                    path, idx, "detach-async",
                    "detached thread / std::async; all parallelism goes "
                    "through util::ThreadPool",
                    waived,
                )
            if not in_net and RAW_SOCKET_RE.search(line):
                self.report(
                    path, idx, "raw-socket",
                    "socket(2)-family syscall or networking header outside "
                    "src/net/; all wire traffic goes through net::Socket so "
                    "framing and typed-error semantics stay in one seam",
                    waived,
                )
            if in_determinism_scope:
                if ACCUM_CALL_RE.search(line) or (
                    fp_accum_re and fp_accum_re.search(line)
                ):
                    self.report(
                        path, idx, "fp-accum",
                        "floating-point accumulation outside the kernel "
                        "files; fold order is the determinism contract",
                        waived,
                    )
                m = RANGE_FOR_RE.search(line)
                if m and m.group(1) in unordered_names:
                    self.report(
                        path, idx, "unordered-iter",
                        f"range-for over unordered container '{m.group(1)}'; "
                        "iteration order is unspecified",
                        waived,
                    )

    def run(self) -> int:
        files = sorted(
            p for p in self.src.rglob("*") if p.suffix in (".h", ".cpp") and p.is_file()
        )
        for path in files:
            self.lint_file(path)
        if self.findings:
            for path, lineno, rule, message in self.findings:
                print(f"{path.relative_to(self.root)}:{lineno}: [{rule}] {message}")
            print(f"lint_invariants: {len(self.findings)} finding(s)")
            return 1
        print(
            f"lint_invariants: OK ({len(files)} files, "
            f"{self.waived_count} waiver(s) honored)"
        )
        return 0


if __name__ == "__main__":
    sys.exit(Linter().run())
